// Package backend is the pluggable conflict-construction layer behind
// Algorithm 1's line 7. The core algorithm never builds the conflict
// subgraph itself: it hands an iteration-local edge oracle and the
// candidate-color lists to a ConflictBuilder selected from the registry
// ("sequential", "parallel", "gpu", "multigpu", or "auto"), and receives the
// conflict CSR plus construction statistics back.
//
// Every builder shares one kernel: the palette-bucket inverted index
// (kernel.go). Vertices are bucketed by candidate color, so only pairs that
// co-occur in a bucket — exactly the pairs sharing a candidate color — are
// ever enumerated, and the edge oracle is consulted once per such pair
// (bitset deduplication), batched one row at a time through
// BatchEdgeOracle.HasRow so row-capable oracles hoist their per-vertex data
// out of the pair loop. This replaces the historical all-pairs scan,
// dropping per-iteration work from Θ(m²) pair tests to Θ(Σ_c |bucket_c|²)
// oracle calls, which under the paper's L²/P operating regime is a small
// fraction of the pair space (see ReferenceAllPairs and the package
// benchmarks for the measured gap). Builders constructed with a Config.Arena
// additionally reuse all working storage across builds (see Arena).
package backend

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"picasso/internal/gpusim"
	"picasso/internal/graph"
	"picasso/internal/memtrack"
)

// EdgeOracle answers adjacency between the iteration-local vertex ids
// [0, Len()). It is the only window a builder has onto the input graph.
type EdgeOracle interface {
	// Len returns the number of active vertices m.
	Len() int
	// Has reports whether local vertices i and j are adjacent in the input.
	Has(i, j int) bool
}

// BatchEdgeOracle is an EdgeOracle whose adjacency test is batched per row:
// HasRow answers Has(i, js[k]) into out[k] for a whole candidate row at
// once. The bucket kernel naturally produces one deduplicated candidate
// list per row, so a batch-capable oracle (e.g. the Pauli commute kernel)
// hoists row i's vertex data a single time and streams the candidates over
// packed words instead of paying an interface dispatch, a closure call and
// a bounds recomputation per pair. Implementations must not retain js/out.
type BatchEdgeOracle interface {
	EdgeOracle
	// HasRow writes Has(i, js[k]) to out[k] for every k; len(out) ≥ len(js).
	HasRow(i int, js []int32, out []bool)
}

// AsBatch adapts any EdgeOracle to the batch interface: batch-capable
// oracles pass through, plain oracles get a per-pair fallback loop. The
// kernel consults oracles exclusively through this, so custom EdgeOracle
// implementations keep working unchanged and batch-capable ones are used
// at full width.
func AsBatch(o EdgeOracle) BatchEdgeOracle {
	if b, ok := o.(BatchEdgeOracle); ok {
		return b
	}
	return perPairBatch{o}
}

// perPairBatch answers HasRow with one Has call per candidate.
type perPairBatch struct{ EdgeOracle }

func (p perPairBatch) HasRow(i int, js []int32, out []bool) {
	for k, j := range js {
		out[k] = p.Has(i, int(j))
	}
}

// DeviceSizer is optionally implemented by oracles whose vertex data must be
// resident on the device during construction (e.g. the encoded Pauli slab of
// Algorithm 3's preprocessing). Device builders probe for it and charge the
// reported bytes to the device budget; oracles without it are charged
// nothing.
type DeviceSizer interface{ DeviceBytes() int64 }

// Lists is the candidate-color-list view the kernel consumes: each of the
// Len() vertices owns a sorted list of ListSize() distinct colors drawn from
// the palette [0, Palette()).
type Lists interface {
	Len() int
	ListSize() int
	Palette() int
	// List returns vertex i's ascending candidate colors; callers must not
	// mutate the returned slice.
	List(i int) []int32
	// Bytes is the list storage footprint, charged to device budgets by the
	// GPU builders (the lists ride along with the input data).
	Bytes() int64
}

// ConflictGraph is the product of one build: the conflict subgraph in CSR
// form on the iteration-local ids.
type ConflictGraph struct {
	G     *graph.CSR
	Edges int64 // |Ec|
}

// Stats reports how a build went: the Algorithm 3 accounting plus kernel
// work counters.
type Stats struct {
	// OnDevice reports that the CSR was generated within the device budget
	// (Algorithm 3's branch); false for host builds and host fallbacks.
	OnDevice bool
	// DevicePeakBytes is the device-memory peak during construction.
	DevicePeakBytes int64
	// HostBytes is the long-lived host allocation charged to the tracker
	// (the conflict CSR when it lives on the host); the caller frees it.
	HostBytes int64
	// PairsTested counts the vertex pairs the build examined — the
	// kernel's work measure. The bucketed builders test only the
	// deduplicated bucket-co-occurring pairs and consult the edge oracle
	// once per tested pair; a dense scan tests all m(m−1)/2 pairs (a list
	// intersection each) and consults the oracle only for the sharing
	// subset, so the two paths make similar oracle-call counts but differ
	// by the full pair space in intersection work.
	PairsTested int64
}

// ConflictBuilder constructs the conflict subgraph of one iteration: the
// edges of the input oracle whose endpoints share a candidate color.
// Implementations must be deterministic up to edge order — the CSR handed
// back always has sorted adjacency, so downstream coloring is reproducible
// across backends.
type ConflictBuilder interface {
	// Name returns the registry name of the builder.
	Name() string
	// Build materializes the conflict subgraph. The tracker receives host
	// memory accounting; Stats.HostBytes is still allocated when Build
	// returns and is released by the caller. Builders honor ctx at their
	// internal stage boundaries (index build, row scan, CSR conversion) and
	// return ctx.Err() when cancelled — partial work is discarded, never
	// returned.
	Build(ctx context.Context, o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error)
}

// Cancelled is the builders' (and the fixed-pass kernel's) non-blocking
// cancellation probe, checked at stage boundaries. A nil ctx never cancels.
func Cancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Config carries the execution resources a factory may need. Factories
// reject configs missing their requirements (e.g. "gpu" without a Device).
type Config struct {
	// Workers is the CPU parallelism (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Device is the simulated accelerator for the single-device path.
	Device *gpusim.Device
	// Devices is the device group for the multi-device path.
	Devices []*gpusim.Device
	// Arena, when non-nil, pools the builder's working storage across
	// builds (see Arena). The builder then allocates only on growth; nil
	// keeps the historical fresh-buffers-per-build behavior.
	Arena *Arena
}

// Factory builds a ConflictBuilder from a Config.
type Factory func(Config) (ConflictBuilder, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named factory. Registering a duplicate name panics:
// backends are wired at init time and a collision is a programming error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates the named backend. The empty name and "auto" select
// automatically from the config: a device group → "multigpu", a single
// device → "gpu", Workers == 1 → "sequential", otherwise "parallel" —
// the historical dispatch, now data instead of a switch in core.
func New(name string, cfg Config) (ConflictBuilder, error) {
	if name == "" || name == "auto" {
		switch {
		case len(cfg.Devices) > 0:
			name = "multigpu"
		case cfg.Device != nil:
			name = "gpu"
		case cfg.Workers == 1:
			name = "sequential"
		default:
			name = "parallel"
		}
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return f(cfg)
}

// Names returns the registered backend names, sorted, with "auto" first.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry)+1)
	for n := range registry {
		names = append(names, n)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return append([]string{"auto"}, names...)
}

// finishCOO converts a host-side edge list to CSR and fills in the host
// accounting: the transient COO is charged for the duration of the
// conversion, the resulting CSR stays charged (Stats.HostBytes) for the
// caller to free.
func finishCOO(coo *graph.COO, tr *memtrack.Tracker, st Stats) (*ConflictGraph, Stats, error) {
	return finishCOOIn(nil, coo, tr, st)
}

// finishCOOIn is finishCOO drawing the degree scratch and the CSR backing
// from an arena (nil = fresh allocations). The pooled CSR is lent to the
// returned ConflictGraph until the arena's next build.
func finishCOOIn(a *Arena, coo *graph.COO, tr *memtrack.Tracker, st Stats) (*ConflictGraph, Stats, error) {
	release := tr.Scoped(coo.Bytes())
	gc, err := coo.ToCSRInto(coo.CountDegreesInto(a.degBuf(coo.N)), a.csrBuf())
	release()
	if err != nil {
		return nil, st, err
	}
	tr.Alloc(gc.Bytes())
	st.HostBytes = gc.Bytes()
	return &ConflictGraph{G: gc, Edges: int64(coo.NumEdges())}, st, nil
}
