package backend

import (
	"context"
	"testing"

	"picasso/internal/graph"
)

// crossTestOracle adjacency-tests active-local rows (offset into the global
// graph) against global fixed ids — the same shape the streaming engine
// wires up.
type crossTestOracle struct {
	o      graph.Oracle
	offset int
}

func (c crossTestOracle) HasCross(i int, fixed []int32, out []bool) {
	for k, f := range fixed {
		out[k] = c.o.HasEdge(c.offset+i, int(f))
	}
}

// fixedFixture: vertices [0, nFixed) are the colored frontier, vertices
// [nFixed, nFixed+nActive) are the active shard with candidate lists.
func fixedFixture(nFixed, nActive, P, L int) (graph.Oracle, []int32, []int32, *testLists) {
	o := graph.RandomOracle{N: nFixed + nActive, P: 0.5, Seed: 77}
	ids := make([]int32, nFixed)
	colors := make([]int32, nFixed)
	for k := range ids {
		ids[k] = int32(k)
		colors[k] = int32((k * 7) % P)
	}
	lists := newTestLists(nActive, P, L, 23)
	return o, ids, colors, lists
}

// bruteForbidden computes the reference mask: slot k of active row i is
// forbidden iff some fixed vertex with that color is adjacent to i.
func bruteForbidden(o graph.Oracle, offset int, ids, colors []int32, lists Lists) []bool {
	L := lists.ListSize()
	want := make([]bool, lists.Len()*L)
	for i := 0; i < lists.Len(); i++ {
		for k, c := range lists.List(i) {
			for f := range ids {
				if colors[f] == c && o.HasEdge(offset+i, int(ids[f])) {
					want[i*L+k] = true
					break
				}
			}
		}
	}
	return want
}

func TestFixedBucketsInvariants(t *testing.T) {
	_, ids, colors, _ := fixedFixture(130, 0, 11, 4)
	fb := NewFixedBucketsIn(nil, 11, ids, colors)
	if got := len(fb.Vtx); got != len(ids) {
		t.Fatalf("index holds %d entries for %d fixed vertices", got, len(ids))
	}
	seen := 0
	for c := int32(0); c < 11; c++ {
		for _, v := range fb.Bucket(c) {
			if colors[v] != c {
				t.Fatalf("vertex %d with color %d filed under bucket %d", v, colors[v], c)
			}
			seen++
		}
	}
	if seen != len(ids) {
		t.Fatalf("buckets cover %d of %d fixed vertices", seen, len(ids))
	}
}

func TestForbidMatchesBruteForce(t *testing.T) {
	const nFixed, nActive, P, L = 150, 120, 13, 4
	o, ids, colors, lists := fixedFixture(nFixed, nActive, P, L)
	cross := crossTestOracle{o: o, offset: nFixed}
	want := bruteForbidden(o, nFixed, ids, colors, lists)

	for _, workers := range []int{1, 4} {
		for _, arena := range []*Arena{nil, NewArena()} {
			fb := NewFixedBucketsIn(arena, P, ids, colors)
			got := make([]bool, nActive*L)
			tested := fb.Forbid(context.Background(), cross, lists, workers, arena, got)
			if tested == 0 {
				t.Fatal("fixed pass tested nothing")
			}
			for s := range want {
				if got[s] != want[s] {
					t.Fatalf("workers=%d arena=%v: slot %d = %v, want %v",
						workers, arena != nil, s, got[s], want[s])
				}
			}
		}
	}
}

func TestForbidAccumulatesAcrossFrontierChunks(t *testing.T) {
	// The streaming engine bounds fixed-pass memory by indexing the frontier
	// chunk by chunk; the union of chunked passes must equal one whole pass.
	const nFixed, nActive, P, L = 160, 90, 9, 3
	o, ids, colors, lists := fixedFixture(nFixed, nActive, P, L)
	cross := crossTestOracle{o: o, offset: nFixed}
	want := bruteForbidden(o, nFixed, ids, colors, lists)

	arena := NewArena()
	got := make([]bool, nActive*L)
	for lo := 0; lo < nFixed; lo += 37 {
		hi := min(lo+37, nFixed)
		fb := NewFixedBucketsIn(arena, P, ids[lo:hi], colors[lo:hi])
		fb.Forbid(context.Background(), cross, lists, 2, arena, got)
	}
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("chunked slot %d = %v, want %v", s, got[s], want[s])
		}
	}
}

func TestBuildersHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := testOracle{graph.RandomOracle{N: 200, P: 0.5, Seed: 3}}
	lists := newTestLists(200, 25, 5, 7)
	for name, b := range testBuilders(t) {
		if _, _, err := b.Build(ctx, o, lists, nil); err != context.Canceled {
			t.Errorf("%s: cancelled build returned %v", name, err)
		}
	}
}
