package backend

import (
	"context"
	"fmt"
	"sync/atomic"

	"picasso/internal/gpusim"
	"picasso/internal/graph"
	"picasso/internal/memtrack"
	"picasso/internal/par"
)

func init() {
	Register("gpu", func(cfg Config) (ConflictBuilder, error) {
		if cfg.Device == nil {
			return nil, fmt.Errorf("backend: gpu backend requires a device")
		}
		return gpuBuilder{dev: cfg.Device, arena: cfg.Arena}, nil
	})
}

// gpuBuilder mirrors Algorithm 3 on the simulated device: one band covering
// every row, with the CSR-on-device decision enabled.
type gpuBuilder struct {
	dev   *gpusim.Device
	arena *Arena
}

func (gpuBuilder) Name() string { return "gpu" }

func (g gpuBuilder) Build(ctx context.Context, o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}
	m := o.Len()
	a := g.arena
	bk := NewBucketsIn(a, lists)
	release := tr.Scoped(bk.Bytes())
	defer release()

	scan, err := deviceScan(ctx, g.dev, o, lists, bk, 0, m, true, a.band(0))
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{
		OnDevice:        scan.onDevice,
		DevicePeakBytes: g.dev.Peak(),
		PairsTested:     scan.calls,
	}
	gc, err := scan.coo.ToCSRInto(scan.deg, a.csrBuf())
	if err != nil {
		return nil, st, err
	}
	if !scan.onDevice {
		// Host-side CSR: charge the host tracker (Algorithm 3 line 8).
		tr.Alloc(gc.Bytes())
		st.HostBytes = gc.Bytes()
	}
	return &ConflictGraph{G: gc, Edges: int64(scan.coo.NumEdges())}, st, nil
}

// scanResult carries one device band back to its builder.
type scanResult struct {
	coo      *graph.COO
	deg      []int64 // per-vertex degree contributions (nil unless decideCSR)
	calls    int64   // oracle consultations
	onDevice bool    // CSR fit the spare budget (only meaningful with decideCSR)
}

// deviceScan runs the Algorithm 3 memory discipline and the bucket kernel
// for rows [lo, hi) on one device. This is the single place the device
// accounting lives — both the gpu and multigpu builders call it:
//
//	1: AvailMem = min(worst-case edge list, free device memory)
//	2: allocate input data (oracle slab + color lists + bucket index) +
//	   2|V| offset counters (4- or 8-byte) + the edge list
//	3: kernel collects each row's bucket-deduplicated candidates, tests the
//	   whole row in one batched oracle call, and bulk-reserves the row's
//	   hits in the unordered edge list through a single atomic cursor add
//	4: per-vertex degrees accumulate for the exclusive_sum step
//	5: with decideCSR, if the CSR fits the spare budget it is generated
//	   "on device"; otherwise the caller falls back to the host CPU.
//
// A conflict-edge overflow of the allocated list is a device OOM — exactly
// how the largest instance in the paper fails on the 40 GB A100. The
// worst-case edge list stays the paper's all-pairs bound for the band (not
// the bucket bound), so edge-list sizing matches the dense-scan
// implementation; the input allocation grows by the bucket index
// (≈ the color lists' own footprint, O(n·L)), which shifts OOM crossovers
// by that small constant — the honest price of shipping the index.
// Per-worker scratch (a seen-bitset of m bits per "SM") is treated as
// kernel-local shared memory outside the budget model, like the dense
// kernel's registers were. The band arena (nil = fresh buffers) pools the
// host-side mirrors of the device allocations across scans; bands must use
// distinct arenas when scanning concurrently. Cancellation (ctx) is checked
// before the kernel launch and between worker chunks: a cancelled scan
// returns ctx.Err() with every device allocation released.
func deviceScan(ctx context.Context, dev *gpusim.Device, o EdgeOracle, lists Lists, bk *Buckets, lo, hi int, decideCSR bool, ba *bandState) (scanResult, error) {
	m := o.Len()
	dev.ResetPeak()

	// Preprocessing: vertex data, color lists and the bucket index move to
	// the device.
	inputBytes := lists.Bytes() + bk.Bytes()
	if ds, ok := o.(DeviceSizer); ok {
		inputBytes += ds.DeviceBytes()
	}
	input, err := dev.Alloc(inputBytes)
	if err != nil {
		return scanResult{}, fmt.Errorf("device input allocation: %w", err)
	}
	defer input.Free()

	// Offset counters: 8 bytes when |V|² overflows 32 bits (paper §V).
	counterWidth := int64(4)
	if uint64(m)*uint64(m) >= 1<<32 {
		counterWidth = 8
	}
	counters, err := dev.Alloc(2 * int64(m) * counterWidth)
	if err != nil {
		return scanResult{}, fmt.Errorf("device counter allocation: %w", err)
	}
	defer counters.Free()

	// Worst-case unordered edge list for the band: Σ_{i∈[lo,hi)} (m−1−i)
	// pairs × 8 bytes (two int32), clamped to the remaining budget.
	worstPairs := bandPairs(m, lo, hi)
	if worstPairs == 0 {
		return scanResult{coo: &graph.COO{N: m}, deg: make([]int64, m)}, nil
	}
	edgeBytes := worstPairs * 8
	if free := dev.Free(); edgeBytes > free {
		edgeBytes = free
	}
	capEdges := edgeBytes / 8
	if capEdges <= 0 {
		return scanResult{}, &gpusim.ErrOutOfMemory{Device: dev.Name, Requested: 8, Free: dev.Free()}
	}
	edgeBuf, err := dev.Alloc(capEdges * 8)
	if err != nil {
		return scanResult{}, fmt.Errorf("device edge-list allocation: %w", err)
	}
	defer edgeBuf.Free()

	// Kernel: contiguous row ranges per worker ("SM") with private scratch.
	// Each row is one batched oracle call; its hits claim a contiguous run
	// of the edge list via one atomic cursor add (row-at-a-time reservation
	// instead of an atomic per edge). Degrees are only accumulated when the
	// caller will build the CSR from this single band (decideCSR); the
	// multi-device path merges bands first and recounts, so its kernels
	// skip the per-edge atomics.
	u32, v32 := ba.edgeBufs(capEdges)
	var deg []int64
	if decideCSR {
		deg = ba.degCounters(m)
	}
	workers := dev.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers > hi-lo {
		workers = hi - lo
	}
	ba.reserveScratches(workers, m)
	bo := AsBatch(o)
	if err := Cancelled(ctx); err != nil {
		return scanResult{}, err
	}
	var cursor, calls atomic.Int64
	var overflow atomic.Bool
	dev.LaunchChunked(hi-lo, func(clo, chi, w int) {
		if Cancelled(ctx) != nil {
			return
		}
		s := ba.scratch(w, m)
		var localCalls int64
		for i := lo + clo; i < lo+chi; i++ {
			if overflow.Load() {
				break
			}
			cand := bk.CollectRow(lists, i, s)
			if len(cand) == 0 {
				continue
			}
			hits := s.hitsFor(len(cand))
			bo.HasRow(i, cand, hits)
			localCalls += int64(len(cand))
			nh := int64(0)
			for _, h := range hits {
				if h {
					nh++
				}
			}
			if nh == 0 {
				continue
			}
			base := cursor.Add(nh) - nh
			if base+nh > capEdges {
				overflow.Store(true)
				break
			}
			idx := base
			for k, j := range cand {
				if hits[k] {
					u32[idx] = int32(i)
					v32[idx] = j
					idx++
					if deg != nil {
						atomic.AddInt64(&deg[j], 1)
					}
				}
			}
			if deg != nil {
				atomic.AddInt64(&deg[i], nh)
			}
		}
		calls.Add(localCalls)
	})
	if err := Cancelled(ctx); err != nil {
		return scanResult{}, err
	}
	if overflow.Load() {
		return scanResult{}, &gpusim.ErrOutOfMemory{
			Device:    dev.Name,
			Requested: (cursor.Load() + 1) * 8,
			Free:      edgeBytes,
		}
	}
	edges := cursor.Load()
	res := scanResult{
		coo:   &graph.COO{N: m, U: u32[:edges], V: v32[:edges]},
		deg:   deg,
		calls: calls.Load(),
	}

	// CSR generation: on device if 2·|Ec| adjacency entries plus offsets fit
	// the spare budget (while the kernel buffers are still resident), else
	// the caller builds it on the host.
	if decideCSR {
		csrBytes := 2*edges*4 + int64(m+1)*8
		if csrBytes <= dev.Free() {
			if b, err := dev.Alloc(csrBytes); err == nil {
				res.onDevice = true
				defer b.Free()
			}
		}
	}
	return res, nil
}
