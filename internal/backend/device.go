package backend

import (
	"fmt"
	"sync/atomic"

	"picasso/internal/gpusim"
	"picasso/internal/graph"
	"picasso/internal/memtrack"
)

func init() {
	Register("gpu", func(cfg Config) (ConflictBuilder, error) {
		if cfg.Device == nil {
			return nil, fmt.Errorf("backend: gpu backend requires a device")
		}
		return gpuBuilder{dev: cfg.Device}, nil
	})
}

// gpuBuilder mirrors Algorithm 3 on the simulated device: one band covering
// every row, with the CSR-on-device decision enabled.
type gpuBuilder struct{ dev *gpusim.Device }

func (gpuBuilder) Name() string { return "gpu" }

func (g gpuBuilder) Build(o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	m := o.Len()
	bk := NewBuckets(lists)
	release := tr.Scoped(bk.Bytes())
	defer release()

	scan, err := deviceScan(g.dev, o, lists, bk, 0, m, true)
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{
		OnDevice:        scan.onDevice,
		DevicePeakBytes: g.dev.Peak(),
		PairsTested:     scan.calls,
	}
	gc, err := scan.coo.ToCSR(scan.deg)
	if err != nil {
		return nil, st, err
	}
	if !scan.onDevice {
		// Host-side CSR: charge the host tracker (Algorithm 3 line 8).
		tr.Alloc(gc.Bytes())
		st.HostBytes = gc.Bytes()
	}
	return &ConflictGraph{G: gc, Edges: int64(scan.coo.NumEdges())}, st, nil
}

// scanResult carries one device band back to its builder.
type scanResult struct {
	coo      *graph.COO
	deg      []int64 // per-vertex degree contributions (nil unless decideCSR)
	calls    int64   // oracle consultations
	onDevice bool    // CSR fit the spare budget (only meaningful with decideCSR)
}

// deviceScan runs the Algorithm 3 memory discipline and the bucket kernel
// for rows [lo, hi) on one device. This is the single place the device
// accounting lives — both the gpu and multigpu builders call it:
//
//	1: AvailMem = min(worst-case edge list, free device memory)
//	2: allocate input data (oracle slab + color lists + bucket index) +
//	   2|V| offset counters (4- or 8-byte) + the edge list
//	3: kernel enumerates bucket-deduplicated candidate pairs per row and
//	   fills an unordered COO through an atomic cursor
//	4: per-vertex degrees accumulate for the exclusive_sum step
//	5: with decideCSR, if the CSR fits the spare budget it is generated
//	   "on device"; otherwise the caller falls back to the host CPU.
//
// A conflict-edge overflow of the allocated list is a device OOM — exactly
// how the largest instance in the paper fails on the 40 GB A100. The
// worst-case edge list stays the paper's all-pairs bound for the band (not
// the bucket bound), so edge-list sizing matches the dense-scan
// implementation; the input allocation grows by the bucket index
// (≈ the color lists' own footprint, O(n·L)), which shifts OOM crossovers
// by that small constant — the honest price of shipping the index.
// Per-worker scratch (a seen-bitset of m bits per "SM") is treated as
// kernel-local shared memory outside the budget model, like the dense
// kernel's registers were.
func deviceScan(dev *gpusim.Device, o EdgeOracle, lists Lists, bk *Buckets, lo, hi int, decideCSR bool) (scanResult, error) {
	m := o.Len()
	dev.ResetPeak()

	// Preprocessing: vertex data, color lists and the bucket index move to
	// the device.
	inputBytes := lists.Bytes() + bk.Bytes()
	if ds, ok := o.(DeviceSizer); ok {
		inputBytes += ds.DeviceBytes()
	}
	input, err := dev.Alloc(inputBytes)
	if err != nil {
		return scanResult{}, fmt.Errorf("device input allocation: %w", err)
	}
	defer input.Free()

	// Offset counters: 8 bytes when |V|² overflows 32 bits (paper §V).
	counterWidth := int64(4)
	if uint64(m)*uint64(m) >= 1<<32 {
		counterWidth = 8
	}
	counters, err := dev.Alloc(2 * int64(m) * counterWidth)
	if err != nil {
		return scanResult{}, fmt.Errorf("device counter allocation: %w", err)
	}
	defer counters.Free()

	// Worst-case unordered edge list for the band: Σ_{i∈[lo,hi)} (m−1−i)
	// pairs × 8 bytes (two int32), clamped to the remaining budget.
	worstPairs := bandPairs(m, lo, hi)
	if worstPairs == 0 {
		return scanResult{coo: &graph.COO{N: m}, deg: make([]int64, m)}, nil
	}
	edgeBytes := worstPairs * 8
	if free := dev.Free(); edgeBytes > free {
		edgeBytes = free
	}
	capEdges := edgeBytes / 8
	if capEdges <= 0 {
		return scanResult{}, &gpusim.ErrOutOfMemory{Device: dev.Name, Requested: 8, Free: dev.Free()}
	}
	edgeBuf, err := dev.Alloc(capEdges * 8)
	if err != nil {
		return scanResult{}, fmt.Errorf("device edge-list allocation: %w", err)
	}
	defer edgeBuf.Free()

	// Kernel: contiguous row ranges per worker ("SM") with private scratch,
	// shared atomic cursor into the edge list, atomic per-vertex degree
	// counters. Degrees are only accumulated when the caller will build the
	// CSR from this single band (decideCSR); the multi-device path merges
	// bands first and recounts, so its kernels skip the per-edge atomics.
	u32 := make([]int32, capEdges)
	v32 := make([]int32, capEdges)
	var deg []int64
	if decideCSR {
		deg = make([]int64, m)
	}
	var cursor, calls atomic.Int64
	var overflow atomic.Bool
	dev.LaunchChunked(hi-lo, func(clo, chi, _ int) {
		s := NewScratch(m)
		var localCalls int64
		for i := lo + clo; i < lo+chi; i++ {
			ok := bk.ForRow(lists, i, s, func(j int32) bool {
				localCalls++
				if !o.Has(i, int(j)) {
					return true
				}
				idx := cursor.Add(1) - 1
				if idx >= capEdges {
					overflow.Store(true)
					return false
				}
				u32[idx] = int32(i)
				v32[idx] = j
				if deg != nil {
					atomic.AddInt64(&deg[i], 1)
					atomic.AddInt64(&deg[j], 1)
				}
				return true
			})
			if !ok {
				break
			}
		}
		calls.Add(localCalls)
	})
	if overflow.Load() {
		return scanResult{}, &gpusim.ErrOutOfMemory{
			Device:    dev.Name,
			Requested: (cursor.Load() + 1) * 8,
			Free:      edgeBytes,
		}
	}
	edges := cursor.Load()
	res := scanResult{
		coo:   &graph.COO{N: m, U: u32[:edges], V: v32[:edges]},
		deg:   deg,
		calls: calls.Load(),
	}

	// CSR generation: on device if 2·|Ec| adjacency entries plus offsets fit
	// the spare budget (while the kernel buffers are still resident), else
	// the caller builds it on the host.
	if decideCSR {
		csrBytes := 2*edges*4 + int64(m+1)*8
		if csrBytes <= dev.Free() {
			if b, err := dev.Alloc(csrBytes); err == nil {
				res.onDevice = true
				defer b.Free()
			}
		}
	}
	return res, nil
}
