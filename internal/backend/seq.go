package backend

import (
	"picasso/internal/graph"
	"picasso/internal/memtrack"
)

func init() {
	Register("sequential", func(Config) (ConflictBuilder, error) {
		return seqBuilder{}, nil
	})
}

// seqBuilder is the single-threaded CPU path (the paper's "CPU only"
// configuration): one scratch, one pass of the bucket kernel over all rows.
type seqBuilder struct{}

func (seqBuilder) Name() string { return "sequential" }

func (seqBuilder) Build(o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	m := o.Len()
	bk := NewBuckets(lists)
	s := NewScratch(m)
	release := tr.Scoped(bk.Bytes() + s.Bytes())
	defer release()
	coo := &graph.COO{N: m}
	st := Stats{PairsTested: bk.scanRows(o, lists, 0, m, s, coo)}
	return finishCOO(coo, tr, st)
}
