package backend

import (
	"context"

	"picasso/internal/memtrack"
)

func init() {
	Register("sequential", func(cfg Config) (ConflictBuilder, error) {
		return seqBuilder{arena: cfg.Arena}, nil
	})
}

// seqBuilder is the single-threaded CPU path (the paper's "CPU only"
// configuration): one scratch, one pass of the bucket kernel over all rows.
type seqBuilder struct{ arena *Arena }

func (seqBuilder) Name() string { return "sequential" }

func (b seqBuilder) Build(ctx context.Context, o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}
	m := o.Len()
	a := b.arena
	bk := NewBucketsIn(a, lists)
	a.reserveLanes(1)
	s := a.scratch(0, m)
	release := tr.Scoped(bk.Bytes() + s.Bytes())
	defer release()
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}
	coo := a.mainCOO(m)
	st := Stats{PairsTested: bk.scanRows(AsBatch(o), lists, 0, m, s, coo)}
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}
	return finishCOOIn(a, coo, tr, st)
}
