package backend

import (
	"context"
	"fmt"
	"testing"

	"picasso/internal/graph"
)

// BenchmarkConflictBuild is the before/after comparison of the refactor:
// the historical all-pairs scan (sharesColor per pair) against the
// palette-bucket inverted-index kernel, on a dense random oracle at the
// paper's Normal operating point (P = 12.5% of n, L = 8). The bucketed
// builders touch only the ~L²/P ≈ 5% of pairs that share a candidate color,
// so they must beat the dense scan by a wide margin at n ≥ 10k.
func BenchmarkConflictBuild(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		o := testOracle{graph.RandomOracle{N: n, P: 0.5, Seed: 42}}
		lists := newTestLists(n, n/8, 8, 9)
		run := func(name string, build func() (*ConflictGraph, Stats, error)) {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				var edges, calls int64
				for i := 0; i < b.N; i++ {
					cg, st, err := build()
					if err != nil {
						b.Fatal(err)
					}
					edges, calls = cg.Edges, st.PairsTested
				}
				b.ReportMetric(float64(edges), "edges")
				b.ReportMetric(float64(calls), "pairs-tested")
			})
		}
		run("allpairs", func() (*ConflictGraph, Stats, error) {
			return ReferenceAllPairs(o, lists, nil)
		})
		run("bucketed", func() (*ConflictGraph, Stats, error) {
			return seqBuilder{}.Build(context.Background(), o, lists, nil)
		})
		run("bucketed-parallel", func() (*ConflictGraph, Stats, error) {
			return parBuilder{}.Build(context.Background(), o, lists, nil)
		})
	}
}
