package backend

import (
	"context"
	"fmt"
	"sync"

	"picasso/internal/gpusim"
	"picasso/internal/graph"
	"picasso/internal/memtrack"
	"picasso/internal/par"
)

func init() {
	Register("multigpu", func(cfg Config) (ConflictBuilder, error) {
		if len(cfg.Devices) == 0 {
			return nil, fmt.Errorf("backend: multigpu backend requires a device group")
		}
		return multiBuilder{devs: cfg.Devices, arena: cfg.Arena}, nil
	})
}

// multiBuilder distributes the row space across a device group — the
// paper's future-work item "distributed multi-GPU parallel implementations"
// (§VIII). Band boundaries are placed on the buckets' per-row pair weights,
// so each device enumerates ~1/D of the *candidate* pairs (the kernel's real
// work), not merely 1/D of the rows; each band then runs the shared
// Algorithm 3 scan against its own budget and the per-device edge lists are
// merged on the host. Only line 7 of Algorithm 1 is distributed: the merged
// conflict graph, and hence the coloring, is identical to every other
// backend's.
type multiBuilder struct {
	devs  []*gpusim.Device
	arena *Arena
}

func (multiBuilder) Name() string { return "multigpu" }

func (b multiBuilder) Build(ctx context.Context, o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	if len(b.devs) == 1 {
		// A singleton group is exactly the single-device path, including
		// its CSR-on-device decision.
		return gpuBuilder{dev: b.devs[0], arena: b.arena}.Build(ctx, o, lists, tr)
	}
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}
	m := o.Len()
	a := b.arena
	bk := NewBucketsIn(a, lists)
	release := tr.Scoped(bk.Bytes())
	defer release()

	bounds := par.WeightedBounds(bk.RowWeight, len(b.devs))
	results := make([]scanResult, len(b.devs))
	errs := make([]error, len(b.devs))
	// Band arenas are reserved serially before the goroutines launch; each
	// device then owns its band's buffers exclusively.
	bands := make([]*bandState, len(b.devs))
	for d := range b.devs {
		bands[d] = a.band(d)
	}
	var wg sync.WaitGroup
	for d := range b.devs {
		lo, hi := bounds[d], bounds[d+1]
		if lo >= hi {
			results[d] = scanResult{coo: &graph.COO{N: m}}
			continue
		}
		wg.Add(1)
		go func(d, lo, hi int) {
			defer wg.Done()
			results[d], errs[d] = deviceScan(ctx, b.devs[d], o, lists, bk, lo, hi, false, bands[d])
		}(d, lo, hi)
	}
	wg.Wait()
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}

	merged := a.mainCOO(m)
	var st Stats
	for d, r := range results {
		if errs[d] != nil {
			return nil, st, fmt.Errorf("device %d: %w", d, errs[d])
		}
		merged.U = append(merged.U, r.coo.U...)
		merged.V = append(merged.V, r.coo.V...)
		st.PairsTested += r.calls
		if p := b.devs[d].Peak(); p > st.DevicePeakBytes {
			st.DevicePeakBytes = p
		}
	}
	return finishCOOIn(a, merged, tr, st)
}

// bandPairs counts the all-pairs upper bound owned by rows [lo, hi) of an
// m-vertex instance: Σ_{i∈[lo,hi)} (m−1−i). The device builders size their
// worst-case edge lists with it (paper Algorithm 3 line 1).
func bandPairs(m int, lo, hi int) int64 {
	count := func(k int64) int64 { return k * (2*int64(m) - 1 - k) / 2 }
	return count(int64(hi)) - count(int64(lo))
}
