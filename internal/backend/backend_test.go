package backend

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"picasso/internal/par"
	"sort"
	"testing"

	"picasso/internal/gpusim"
	"picasso/internal/graph"
	"picasso/internal/memtrack"
)

// testOracle adapts a graph.Oracle on identity ids to backend.EdgeOracle.
type testOracle struct{ o graph.Oracle }

func (t testOracle) Len() int          { return t.o.NumVertices() }
func (t testOracle) Has(i, j int) bool { return t.o.HasEdge(i, j) }

// testLists is a deterministic Lists implementation: vertex i draws L
// distinct sorted colors from [0, P) off a seeded RNG.
type testLists struct {
	n, P, L int
	flat    []int32
}

func newTestLists(n, P, L int, seed int64) *testLists {
	rng := rand.New(rand.NewSource(seed))
	tl := &testLists{n: n, P: P, L: L, flat: make([]int32, n*L)}
	perm := make([]int32, P)
	for c := range perm {
		perm[c] = int32(c)
	}
	for i := 0; i < n; i++ {
		rng.Shuffle(P, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		lst := tl.flat[i*L : (i+1)*L]
		copy(lst, perm[:L])
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
	}
	return tl
}

func (t *testLists) Len() int           { return t.n }
func (t *testLists) ListSize() int      { return t.L }
func (t *testLists) Palette() int       { return t.P }
func (t *testLists) List(i int) []int32 { return t.flat[i*t.L : (i+1)*t.L] }
func (t *testLists) Bytes() int64       { return int64(cap(t.flat)) * 4 }

// sortedEdges canonicalizes a conflict graph to a lexicographic (u<v) list.
func sortedEdges(t *testing.T, cg *ConflictGraph) [][2]int32 {
	t.Helper()
	edges := cg.G.EdgeList()
	if int64(len(edges)) != cg.Edges {
		t.Fatalf("CSR holds %d edges, ConflictGraph says %d", len(edges), cg.Edges)
	}
	return edges
}

func testBuilders(t *testing.T) map[string]ConflictBuilder {
	t.Helper()
	mk := func(name string, cfg Config) ConflictBuilder {
		b, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	return map[string]ConflictBuilder{
		"sequential": mk("sequential", Config{}),
		"parallel-1": mk("parallel", Config{Workers: 1}),
		"parallel-4": mk("parallel", Config{Workers: 4}),
		"parallel-0": mk("parallel", Config{}),
		"gpu":        mk("gpu", Config{Device: gpusim.NewDevice("t", 1<<30, 4)}),
		"multigpu-1": mk("multigpu", Config{Devices: []*gpusim.Device{gpusim.NewDevice("t", 1<<30, 2)}}),
		"multigpu-3": mk("multigpu", Config{Devices: []*gpusim.Device{
			gpusim.NewDevice("t0", 1<<30, 2),
			gpusim.NewDevice("t1", 1<<30, 2),
			gpusim.NewDevice("t2", 1<<30, 2),
		}}),
	}
}

func TestBuildersMatchAllPairsReference(t *testing.T) {
	// Every builder must produce the exact edge set of the dense all-pairs
	// scan, across list shapes from sparse palettes to full-palette (every
	// pair shares a color) and graph densities from empty to complete.
	cases := []struct {
		n, P, L int
		density float64
	}{
		{1, 1, 1, 0.5},
		{2, 2, 1, 1.0},
		{60, 8, 3, 0.5},
		{120, 15, 4, 0.3},
		{120, 4, 4, 0.9}, // L == P: all pairs conflict
		{200, 25, 5, 0.0},
		{200, 25, 5, 1.0},
		{257, 40, 6, 0.5},
	}
	for ci, tc := range cases {
		o := testOracle{graph.RandomOracle{N: tc.n, P: tc.density, Seed: uint64(ci) + 7}}
		lists := newTestLists(tc.n, tc.P, tc.L, int64(ci)*13+1)
		refCG, refStats, err := ReferenceAllPairs(o, lists, nil)
		if err != nil {
			t.Fatalf("case %d: reference: %v", ci, err)
		}
		want := sortedEdges(t, refCG)
		wantPairs := int64(tc.n) * int64(tc.n-1) / 2
		if refStats.PairsTested != wantPairs {
			t.Fatalf("case %d: reference tested %d pairs, want %d", ci, refStats.PairsTested, wantPairs)
		}
		for name, b := range testBuilders(t) {
			var tr memtrack.Tracker
			cg, st, err := b.Build(context.Background(), o, lists, &tr)
			if err != nil {
				t.Fatalf("case %d %s: %v", ci, name, err)
			}
			got := sortedEdges(t, cg)
			if len(got) != len(want) {
				t.Fatalf("case %d %s: %d edges, want %d", ci, name, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("case %d %s: edge %d is %v, want %v", ci, name, k, got[k], want[k])
				}
			}
			// Bucketed kernels must never consult the oracle more often
			// than the dense scan, and must ask exactly once per
			// color-sharing pair.
			if st.PairsTested > refStats.PairsTested {
				t.Errorf("case %d %s: %d oracle calls exceed all-pairs %d",
					ci, name, st.PairsTested, refStats.PairsTested)
			}
			tr.Free(st.HostBytes)
			if tr.Current() != 0 {
				t.Errorf("case %d %s: leaked %d tracked bytes", ci, name, tr.Current())
			}
		}
	}
}

func TestOracleCallCountMatchesSharingPairs(t *testing.T) {
	// The kernel's promise: exactly one oracle call per pair with
	// intersecting lists, none for the rest.
	lists := newTestLists(150, 20, 4, 3)
	var want int64
	for i := 0; i < 150; i++ {
		for j := i + 1; j < 150; j++ {
			if intersectSorted(lists.List(i), lists.List(j)) {
				want++
			}
		}
	}
	o := testOracle{graph.RandomOracle{N: 150, P: 0.5, Seed: 5}}
	for name, b := range testBuilders(t) {
		_, st, err := b.Build(context.Background(), o, lists, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.PairsTested != want {
			t.Errorf("%s: %d oracle calls, want %d sharing pairs", name, st.PairsTested, want)
		}
	}
}

func TestChunkedScanPreservesCOOOrder(t *testing.T) {
	// The parallel builder's determinism rests on this: scanning rows in
	// contiguous chunks and concatenating the per-chunk edge lists in chunk
	// order must reproduce the sequential scan's raw COO byte-for-byte
	// (row-major, bucket-discovery order within a row). Compared at the
	// kernel level — CSR conversion sorts adjacency and would mask order
	// bugs.
	const n = 300
	o := testOracle{graph.RandomOracle{N: n, P: 0.5, Seed: 11}}
	lists := newTestLists(n, 40, 6, 17)
	bk := NewBuckets(lists)

	whole := &graph.COO{N: n}
	bk.scanRows(AsBatch(o), lists, 0, n, NewScratch(n), whole)

	chunked := &graph.COO{N: n}
	for _, cut := range [][2]int{{0, 97}, {97, 201}, {201, n}} {
		part := &graph.COO{N: n}
		bk.scanRows(AsBatch(o), lists, cut[0], cut[1], NewScratch(n), part)
		chunked.U = append(chunked.U, part.U...)
		chunked.V = append(chunked.V, part.V...)
	}

	if len(whole.U) == 0 {
		t.Fatal("test instance produced no edges")
	}
	if len(whole.U) != len(chunked.U) {
		t.Fatalf("edge counts differ: %d vs %d", len(whole.U), len(chunked.U))
	}
	for k := range whole.U {
		if whole.U[k] != chunked.U[k] || whole.V[k] != chunked.V[k] {
			t.Fatalf("COO entry %d differs: (%d,%d) vs (%d,%d)",
				k, whole.U[k], whole.V[k], chunked.U[k], chunked.V[k])
		}
	}
}

func TestRegistrySelection(t *testing.T) {
	dev := gpusim.NewDevice("d", 1<<20, 1)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"", Config{Workers: 1}, "sequential"},
		{"auto", Config{Workers: 1}, "sequential"},
		{"", Config{}, "parallel"},
		{"", Config{Workers: 8}, "parallel"},
		{"", Config{Device: dev}, "gpu"},
		{"", Config{Devices: []*gpusim.Device{dev, dev}}, "multigpu"},
		{"sequential", Config{Workers: 64}, "sequential"}, // explicit beats auto
	}
	for _, tc := range cases {
		b, err := New(tc.name, tc.cfg)
		if err != nil {
			t.Fatalf("New(%q, %+v): %v", tc.name, tc.cfg, err)
		}
		if b.Name() != tc.want {
			t.Errorf("New(%q, %+v) = %s, want %s", tc.name, tc.cfg, b.Name(), tc.want)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := New("bogus", Config{}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := New("gpu", Config{}); err == nil {
		t.Error("gpu backend without a device accepted")
	}
	if _, err := New("multigpu", Config{}); err == nil {
		t.Error("multigpu backend without devices accepted")
	}
}

func TestNamesContainsBuiltins(t *testing.T) {
	names := Names()
	if names[0] != "auto" {
		t.Fatalf("Names()[0] = %q, want auto", names[0])
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range []string{"sequential", "parallel", "gpu", "multigpu"} {
		if !have[n] {
			t.Errorf("Names() missing %q: %v", n, names)
		}
	}
}

func TestDeviceOOMPropagates(t *testing.T) {
	o := testOracle{graph.RandomOracle{N: 400, P: 0.9, Seed: 3}}
	lists := newTestLists(400, 4, 4, 9) // full palette: every pair conflicts
	for _, mk := range []func() ConflictBuilder{
		func() ConflictBuilder { return gpuBuilder{dev: gpusim.NewDevice("tiny", 2048, 2)} },
		func() ConflictBuilder {
			return multiBuilder{devs: []*gpusim.Device{
				gpusim.NewDevice("tiny0", 2048, 2), gpusim.NewDevice("tiny1", 2048, 2),
			}}
		},
	} {
		b := mk()
		_, _, err := b.Build(context.Background(), o, lists, nil)
		if err == nil {
			t.Fatalf("%s: tiny budget accepted", b.Name())
		}
		var oom *gpusim.ErrOutOfMemory
		if !errors.As(err, &oom) {
			t.Fatalf("%s: error is %T: %v", b.Name(), err, err)
		}
	}
}

func TestBucketsInvariants(t *testing.T) {
	lists := newTestLists(120, 16, 5, 21)
	bk := NewBuckets(lists)
	if got := int64(len(bk.Vtx)); got != 120*5 {
		t.Fatalf("index holds %d entries, want %d", got, 120*5)
	}
	// Each bucket ascending; membership mirrors the lists exactly.
	member := map[[2]int32]bool{}
	for c := 0; c < bk.P; c++ {
		bucket := bk.Vtx[bk.Off[c]:bk.Off[c+1]]
		for k, v := range bucket {
			if k > 0 && bucket[k-1] >= v {
				t.Fatalf("bucket %d not ascending: %v", c, bucket)
			}
			member[[2]int32{int32(c), v}] = true
		}
	}
	for i := 0; i < 120; i++ {
		for _, c := range lists.List(i) {
			if !member[[2]int32{c, int32(i)}] {
				t.Fatalf("vertex %d missing from bucket %d", i, c)
			}
		}
	}
	// Row weights sum to the total pair work.
	var wsum int64
	for _, w := range bk.RowWeight {
		wsum += w
	}
	if pw := bk.PairWork(); wsum != pw {
		t.Fatalf("row weights sum to %d, PairWork says %d", wsum, pw)
	}
}

func TestForRowDeduplicates(t *testing.T) {
	// Craft heavy overlap: tiny palette, long lists — most pairs share many
	// colors but must surface exactly once.
	lists := newTestLists(40, 6, 4, 2)
	bk := NewBuckets(lists)
	s := NewScratch(40)
	for i := 0; i < 40; i++ {
		seen := map[int32]int{}
		bk.ForRow(lists, i, s, func(j int32) bool {
			seen[j]++
			return true
		})
		for j, count := range seen {
			if count != 1 {
				t.Fatalf("row %d: vertex %d surfaced %d times", i, j, count)
			}
			if int(j) <= i {
				t.Fatalf("row %d surfaced non-upper vertex %d", i, j)
			}
			if !intersectSorted(lists.List(i), lists.List(int(j))) {
				t.Fatalf("row %d surfaced non-sharing vertex %d", i, j)
			}
		}
		// Completeness: every sharing pair appears.
		for j := i + 1; j < 40; j++ {
			if intersectSorted(lists.List(i), lists.List(j)) {
				if _, ok := seen[int32(j)]; !ok {
					t.Fatalf("row %d missed sharing vertex %d", i, j)
				}
			}
		}
	}
}

func TestWeightedBoundsBalance(t *testing.T) {
	for _, m := range []int{10, 101, 1000} {
		for _, d := range []int{1, 2, 3, 7} {
			// Triangular weights reproduce the historical all-pairs split.
			weights := make([]int64, m)
			for i := range weights {
				weights[i] = int64(m - 1 - i)
			}
			bounds := par.WeightedBounds(weights, d)
			if len(bounds) != d+1 || bounds[0] != 0 || bounds[d] != m {
				t.Fatalf("m=%d d=%d: bounds %v", m, d, bounds)
			}
			total := int64(m) * int64(m-1) / 2
			for band := 0; band < d; band++ {
				if bounds[band] > bounds[band+1] {
					t.Fatalf("m=%d d=%d: bounds not monotone: %v", m, d, bounds)
				}
				pairs := bandPairs(m, bounds[band], bounds[band+1])
				fair := total / int64(d)
				if fair > int64(m) && pairs > 2*fair+int64(m) {
					t.Errorf("m=%d d=%d band %d: %d pairs vs fair %d", m, d, band, pairs, fair)
				}
			}
		}
	}
}

func TestBandPairs(t *testing.T) {
	// Closed form against the naive sum, and full coverage across bands.
	for _, m := range []int{1, 2, 57, 200} {
		for lo := 0; lo <= m; lo += 13 {
			for hi := lo; hi <= m; hi += 17 {
				var want int64
				for i := lo; i < hi; i++ {
					want += int64(m - 1 - i)
				}
				if got := bandPairs(m, lo, hi); got != want {
					t.Fatalf("bandPairs(%d,%d,%d) = %d, want %d", m, lo, hi, got, want)
				}
			}
		}
	}
	m := 57
	weights := make([]int64, m)
	for i := range weights {
		weights[i] = int64(m - 1 - i)
	}
	bounds := par.WeightedBounds(weights, 4)
	var sum int64
	for b := 0; b < 4; b++ {
		sum += bandPairs(m, bounds[b], bounds[b+1])
	}
	if want := int64(m) * int64(m-1) / 2; sum != want {
		t.Fatalf("bands cover %d pairs, want %d", sum, want)
	}
}

func TestPairWorkBeatsAllPairsAtPaperRegime(t *testing.T) {
	// At the paper's operating point (P = 12.5% of n, L = 2·log10 n) the
	// bucket bound Σ|b_c|² concentrates near the L²/P collision rate —
	// 5.1% of m(m−1)/2 at n = 10000 — which is the asymptotic claim the
	// benchmark quantifies in wall-clock. Allow 50% slack for sampling
	// variance.
	n := 10000
	P, L := n/8, 8
	lists := newTestLists(n, P, L, 5)
	bk := NewBuckets(lists)
	allPairs := int64(n) * int64(n-1) / 2
	bound := int64(float64(allPairs) * 1.5 * float64(L*L) / float64(P))
	if pw := bk.PairWork(); pw > bound {
		t.Errorf("pair work %d exceeds 1.5·L²/P bound %d (all pairs %d)", pw, bound, allPairs)
	}
}

func ExampleNew() {
	b, _ := New("", Config{Workers: 1})
	fmt.Println(b.Name())
	// Output: sequential
}
