package backend

import (
	"context"

	"picasso/internal/graph"
	"picasso/internal/grow"
	"picasso/internal/par"
)

// This file is the fixed-color pass of the streaming engine: the second life
// of the palette-bucket inverted index. When Picasso colors a shard against
// an already-colored frontier, a candidate color c is unusable for an active
// vertex exactly when some *fixed* neighbor already holds c. Fixed vertices
// are bucketed by their (palette-local) color — each appears in exactly one
// bucket, so unlike the candidate-list index no pair deduplication is ever
// needed — and every active row tests, per candidate color, only that
// color's bucket through one batched cross-adjacency call. The pass writes a
// per-list-slot forbidden mask the conflict-coloring stage consumes; it
// never materializes cross-shard edges.

// CrossOracle answers adjacency between an active (iteration-local) row and
// fixed frontier vertices. The fixed ids are the opaque int32 ids the caller
// put into the FixedBuckets index — global vertex ids, in the streaming
// engine's use. Implementations must not retain fixed/out.
type CrossOracle interface {
	// HasCross writes, for every k, whether active row i is adjacent to
	// fixed vertex fixed[k]; len(out) must be at least len(fixed).
	HasCross(i int, fixed []int32, out []bool)
}

// FixedBuckets is the inverted index palette-local color → fixed vertices
// holding it, in CSR layout like Buckets (Off has P+1 entries into Vtx).
type FixedBuckets struct {
	P   int
	Off []int64
	Vtx []int32
}

// NewFixedBucketsIn builds the fixed-color index over len(ids) frontier
// vertices: ids[k] holds palette-local color colors[k], which must lie in
// [0, P). Index storage (and the counting scratch) comes from the arena;
// nil allocates fresh. Two counting passes, Θ(|ids| + P) time and space.
func NewFixedBucketsIn(a *Arena, P int, ids, colors []int32) *FixedBuckets {
	fb := &FixedBuckets{}
	var cnt []int64
	if a != nil {
		if a.fb == nil {
			a.fb = &FixedBuckets{}
		}
		fb = a.fb
		a.cnt = grow.Zeroed(a.cnt, P)
		cnt = a.cnt
	} else {
		cnt = make([]int64, P)
	}
	fb.P = P
	for _, c := range colors {
		cnt[c]++
	}
	fb.Off = graph.ExclusiveSumInto(cnt, grow.Slice(fb.Off, P+1))
	fb.Vtx = grow.Slice(fb.Vtx, int(fb.Off[P]))
	copy(cnt, fb.Off[:P])
	for k, c := range colors {
		fb.Vtx[cnt[c]] = ids[k]
		cnt[c]++
	}
	return fb
}

// Bucket returns the fixed vertices holding palette-local color c.
func (fb *FixedBuckets) Bucket(c int32) []int32 {
	return fb.Vtx[fb.Off[c]:fb.Off[c+1]]
}

// Bytes is the index footprint for budget accounting: live entries, not
// arena-pooled capacity.
func (fb *FixedBuckets) Bytes() int64 {
	return int64(len(fb.Off))*8 + int64(len(fb.Vtx))*4
}

// crossBlock bounds one batched cross-adjacency call, so a row stops paying
// for a large bucket as soon as one adjacent fixed vertex condemns the
// color.
const crossBlock = 256

// Forbid scans every active row's candidate list against the index and
// marks forbidden[i*L + k] when list slot k of row i carries a color some
// adjacent fixed vertex already holds (marks are only ever set, never
// cleared, so repeated passes over frontier chunks accumulate). Rows are
// split into parallel chunks (workers ≤ 0 = GOMAXPROCS); each row writes
// only its own mask slots, so the result is deterministic regardless of
// schedule. Returns the number of cross adjacency tests performed.
// Cancellation is honored at chunk boundaries: a cancelled pass may leave
// the mask partially marked, and the caller discards it.
func (fb *FixedBuckets) Forbid(ctx context.Context, o CrossOracle, lists Lists, workers int, a *Arena, forbidden []bool) int64 {
	m, L := lists.Len(), lists.ListSize()
	if m == 0 || len(fb.Vtx) == 0 {
		return 0
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers > m {
		workers = m
	}
	a.reserveLanes(workers)
	calls := a.callsBuf(workers)
	par.ForChunks(workers, m, func(lo, hi, w int) {
		if Cancelled(ctx) != nil {
			return
		}
		s := a.scratch(w, 0)
		hits := s.hitsFor(crossBlock)
		var tested int64
		for i := lo; i < hi; i++ {
			for k, c := range lists.List(i) {
				if forbidden[i*L+k] {
					continue // condemned by an earlier frontier chunk
				}
				members := fb.Bucket(c)
				for len(members) > 0 {
					blk := members
					if len(blk) > crossBlock {
						blk = blk[:crossBlock]
					}
					o.HasCross(i, blk, hits)
					tested += int64(len(blk))
					hit := false
					for b := range blk {
						if hits[b] {
							hit = true
							break
						}
					}
					if hit {
						forbidden[i*L+k] = true
						break
					}
					members = members[len(blk):]
				}
			}
		}
		calls[w] += tested
	})
	var total int64
	for w := 0; w < workers; w++ {
		total += calls[w]
	}
	return total
}
