package backend

import (
	"picasso/internal/graph"
	"picasso/internal/grow"
)

// Arena pools the working storage of conflict-graph construction — the
// bucket index, per-worker kernel scratch, COO edge buffers, device band
// buffers, and the conflict CSR backing — so a steady-state caller (the
// iteration loop, a service worker recoloring job after job) reuses one set
// of allocations instead of re-making them every build. Buffers grow to the
// largest build seen and are retained, except the device bands' worst-case
// edge mirrors, whose retention is bounded (see maxRetainedBandEdges).
//
// An Arena is NOT safe for concurrent use: hold one per goroutine (the
// coloring service keeps one per pool worker). Builds running on one arena
// may still fan out internally — worker lanes and device bands are reserved
// serially before the parallel section, so each goroutine touches only its
// own lane. Every builder accepts a nil *Arena and falls back to fresh
// per-build allocations.
type Arena struct {
	bk    *Buckets
	fb    *FixedBuckets // streaming fixed-color index (fixed.go)
	cnt   []int64       // bucket counting/cursor scratch (palette-sized)
	lanes []workerLane
	bands []*bandState
	calls []int64
	coo   graph.COO // sequential/merge edge list
	deg   []int64
	csr   graph.CSR
}

// NewArena returns an empty arena; storage grows on first use.
func NewArena() *Arena { return &Arena{} }

// workerLane is one CPU worker's private kernel state.
type workerLane struct {
	s   *Scratch
	coo graph.COO
}

// bandState is one device band's private kernel state: per-"SM" scratches
// plus the band's unordered edge list and degree counters.
type bandState struct {
	scratches []*Scratch
	u, v      []int32
	deg       []int64
}

// reserveLanes grows the CPU worker-lane table to count lanes. Must be
// called serially before concurrent lane access.
func (a *Arena) reserveLanes(count int) {
	if a == nil {
		return
	}
	for len(a.lanes) < count {
		a.lanes = append(a.lanes, workerLane{})
	}
}

// scratch returns worker lane w's kernel scratch, grown for n vertices.
// With a nil arena it allocates a fresh Scratch, matching the historical
// per-build behavior.
func (a *Arena) scratch(w, n int) *Scratch {
	if a == nil {
		return NewScratch(n)
	}
	ln := &a.lanes[w]
	if ln.s == nil {
		ln.s = NewScratch(n)
	} else {
		ln.s.grow(n)
	}
	return ln.s
}

// laneCOO returns worker lane w's edge buffer, emptied for n vertices. The
// returned COO aliases arena storage, so growth through Append is retained
// for the next build.
func (a *Arena) laneCOO(w, n int) *graph.COO {
	if a == nil {
		return &graph.COO{N: n}
	}
	c := &a.lanes[w].coo
	c.N = n
	c.U = c.U[:0]
	c.V = c.V[:0]
	return c
}

// mainCOO returns the sequential/merge edge buffer, emptied for n vertices.
func (a *Arena) mainCOO(n int) *graph.COO {
	if a == nil {
		return &graph.COO{N: n}
	}
	a.coo.N = n
	a.coo.U = a.coo.U[:0]
	a.coo.V = a.coo.V[:0]
	return &a.coo
}

// callsBuf returns a zeroed per-worker call-count buffer.
func (a *Arena) callsBuf(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	a.calls = grow.Zeroed(a.calls, n)
	return a.calls
}

// degBuf returns the degree scratch for CSR conversion (contents garbage;
// CountDegreesInto zeroes it).
func (a *Arena) degBuf(n int) []int64 {
	if a == nil {
		return nil
	}
	a.deg = grow.Slice(a.deg, n)
	return a.deg
}

// csrBuf returns the pooled conflict-CSR target, or nil (= allocate fresh)
// without an arena. The CSR handed back by a build stays valid until the
// next build on the same arena — exactly the iteration-at-a-time lifetime
// the coloring core gives it.
func (a *Arena) csrBuf() *graph.CSR {
	if a == nil {
		return nil
	}
	return &a.csr
}

// band returns device band i's pooled state, reserving lanes up to i. Must
// be called serially (before the per-device goroutines launch); with a nil
// arena it returns a nil *bandState whose methods allocate fresh buffers.
func (a *Arena) band(i int) *bandState {
	if a == nil {
		return nil
	}
	for len(a.bands) <= i {
		a.bands = append(a.bands, &bandState{})
	}
	return a.bands[i]
}

// reserveScratches grows the band's per-worker scratch table. Serial-only.
func (b *bandState) reserveScratches(count, n int) {
	if b == nil {
		return
	}
	for len(b.scratches) < count {
		b.scratches = append(b.scratches, NewScratch(n))
	}
	for _, s := range b.scratches[:count] {
		s.grow(n)
	}
}

// scratch returns band worker w's scratch. Workers beyond the reserved
// table (or any worker, when pooling is off) get a fresh Scratch — the
// reservation is an optimization, never a correctness requirement, so the
// kernel cannot index out of bounds or share scratch if the launcher's
// worker-count policy ever drifts from the reservation's estimate.
// Concurrent calls with distinct w are safe: nothing mutates the table
// between reserveScratches and the end of the launch.
func (b *bandState) scratch(w, n int) *Scratch {
	if b == nil || w >= len(b.scratches) {
		return NewScratch(n)
	}
	return b.scratches[w]
}

// maxRetainedBandEdges bounds the per-band edge-mirror capacity an arena
// keeps between builds (entries per half; 8M ≈ 64 MB per band across both
// halves). deviceScan sizes these buffers at the band's worst-case
// all-pairs bound clamped by device memory — far above the edges actually
// produced — so retaining them unconditionally would pin that worst case in
// every long-lived worker. Larger requests are served fresh and left to the
// collector, exactly the pre-arena behavior.
const maxRetainedBandEdges = 8 << 20

// edgeBufs returns the band's unordered edge list halves, grown to capEdges.
func (b *bandState) edgeBufs(capEdges int64) ([]int32, []int32) {
	if b == nil || capEdges > maxRetainedBandEdges {
		return make([]int32, capEdges), make([]int32, capEdges)
	}
	b.u = grow.Slice(b.u, int(capEdges))
	b.v = grow.Slice(b.v, int(capEdges))
	return b.u, b.v
}

// degCounters returns the band's zeroed per-vertex degree counters.
func (b *bandState) degCounters(n int) []int64 {
	if b == nil {
		return make([]int64, n)
	}
	b.deg = grow.Zeroed(b.deg, n)
	return b.deg
}
