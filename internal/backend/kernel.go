package backend

import (
	"sort"

	"picasso/internal/bitvec"
	"picasso/internal/graph"
	"picasso/internal/memtrack"
)

// Buckets is the palette inverted index at the heart of every builder: for
// each candidate color c ∈ [0, P), the ascending list of vertices whose
// candidate list contains c, stored flat in CSR style (Off has P+1 entries
// into Vtx, which has n·L entries — one per list slot, the same footprint as
// the lists themselves).
//
// Two vertices share a candidate color exactly when they co-occur in some
// bucket, so enumerating within-bucket pairs *is* the shares-color test:
// no per-pair list intersection is ever computed, and the edge oracle is the
// only per-pair work left.
type Buckets struct {
	P   int
	Off []int64
	Vtx []int32
	// RowWeight[i] counts the bucket co-occurrences (j, i) with j > i over
	// all of i's colors — an upper bound on row i's candidate pairs before
	// deduplication, and the load measure for weighted row chunking.
	// Σ RowWeight = PairWork.
	RowWeight []int64
}

// NewBuckets builds the inverted index in two counting passes over the
// lists, Θ(n·L) time and space.
func NewBuckets(lists Lists) *Buckets {
	n, P := lists.Len(), lists.Palette()
	counts := make([]int64, P)
	for i := 0; i < n; i++ {
		for _, c := range lists.List(i) {
			counts[c]++
		}
	}
	off := graph.ExclusiveSum(counts)
	vtx := make([]int32, off[P])
	cur := make([]int64, P)
	copy(cur, off[:P])
	for i := 0; i < n; i++ {
		for _, c := range lists.List(i) {
			vtx[cur[c]] = int32(i)
			cur[c]++
		}
	}
	// Buckets are ascending by construction (vertices inserted in id order),
	// so the member at position k of a bucket of size s has s−1−k larger
	// co-members — the pairs its row will enumerate from that bucket.
	weight := make([]int64, n)
	for c := 0; c < P; c++ {
		members := vtx[off[c]:off[c+1]]
		for k, j := range members {
			weight[j] += int64(len(members) - 1 - k)
		}
	}
	return &Buckets{P: P, Off: off, Vtx: vtx, RowWeight: weight}
}

// Bytes returns the index footprint for budget accounting (device builders
// ship the index alongside the lists).
func (b *Buckets) Bytes() int64 {
	return int64(cap(b.Off))*8 + int64(cap(b.Vtx))*4 + int64(cap(b.RowWeight))*8
}

// PairWork returns Σ_c |bucket_c|·(|bucket_c|−1)/2, the kernel's total pair
// enumerations before deduplication — the Θ(Σ_c |bucket_c|²) bound that
// replaces the all-pairs m(m−1)/2.
func (b *Buckets) PairWork() int64 {
	var total int64
	for c := 0; c < b.P; c++ {
		s := b.Off[c+1] - b.Off[c]
		total += s * (s - 1) / 2
	}
	return total
}

// Scratch is the per-worker state of the row scan: a seen-bitset plus the
// candidate list of the current row. One Scratch may be reused across any
// number of sequential ForRow calls; concurrent rows need separate Scratches.
type Scratch struct {
	seen bitvec.Bits
	cand []int32
}

// NewScratch returns scratch state for graphs of n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{seen: bitvec.NewBits(n)}
}

// Bytes returns the scratch footprint.
func (s *Scratch) Bytes() int64 {
	return s.seen.Bytes() + int64(cap(s.cand))*4
}

// ScratchBytes returns the bitset footprint of a Scratch for n vertices
// without allocating one — for charging per-worker scratch to a tracker
// up front (the candidate slice grows on demand and is excluded, as
// transient append storage is throughout the memory model).
func ScratchBytes(n int) int64 {
	return int64((n+63)/64) * 8
}

// ForRow calls f exactly once for every vertex j > i sharing at least one
// candidate color with i (in bucket-discovery order). Duplicates — pairs
// sharing several colors — are suppressed with the scratch bitset, which is
// restored to all-zero before f runs, so f may recurse into other rows.
// Each bucket is entered at the first member greater than i via binary
// search: rows near the top of a bucket never rescan the vertices below
// them. Returns false if f aborted the scan.
func (b *Buckets) ForRow(lists Lists, i int, s *Scratch, f func(j int32) bool) bool {
	s.cand = s.cand[:0]
	for _, c := range lists.List(i) {
		members := b.Vtx[b.Off[c]:b.Off[c+1]]
		k := sort.Search(len(members), func(k int) bool { return members[k] > int32(i) })
		for _, j := range members[k:] {
			if !s.seen.Test(int(j)) {
				s.seen.Set(int(j))
				s.cand = append(s.cand, j)
			}
		}
	}
	for _, j := range s.cand {
		s.seen.Clear(int(j))
	}
	for _, j := range s.cand {
		if !f(j) {
			return false
		}
	}
	return true
}

// scanRows runs the kernel over rows [lo, hi), appending the surviving
// edges to coo and returning the number of pairs tested (each test is one
// edge-oracle consultation — bucket co-occurrence already proved the pair
// shares a color). This is the one conflict-test loop every builder
// executes.
func (b *Buckets) scanRows(o EdgeOracle, lists Lists, lo, hi int, s *Scratch, coo *graph.COO) int64 {
	var calls int64
	for i := lo; i < hi; i++ {
		b.ForRow(lists, i, s, func(j int32) bool {
			calls++
			if o.Has(i, int(j)) {
				coo.Append(int32(i), j)
			}
			return true
		})
	}
	return calls
}

// ReferenceAllPairs is the pre-bucketing construction kept as the benchmark
// and equivalence baseline: a sequential scan of all m(m−1)/2 pairs with a
// per-pair sorted-list intersection. It is not a registered backend — every
// production builder uses the bucket kernel — but the package tests assert
// edge-set equality against it and BenchmarkConflictBuild measures the gap.
func ReferenceAllPairs(o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	m := o.Len()
	coo := &graph.COO{N: m}
	var st Stats
	for i := 0; i < m; i++ {
		li := lists.List(i)
		for j := i + 1; j < m; j++ {
			st.PairsTested++
			if intersectSorted(li, lists.List(j)) && o.Has(i, j) {
				coo.Append(int32(i), int32(j))
			}
		}
	}
	return finishCOO(coo, tr, st)
}

// intersectSorted reports whether two ascending slices share an element.
func intersectSorted(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
