package backend

import (
	"sort"

	"picasso/internal/bitvec"
	"picasso/internal/graph"
	"picasso/internal/grow"
	"picasso/internal/memtrack"
)

// Buckets is the palette inverted index at the heart of every builder: for
// each candidate color c ∈ [0, P), the ascending list of vertices whose
// candidate list contains c, stored flat in CSR style (Off has P+1 entries
// into Vtx, which has n·L entries — one per list slot, the same footprint as
// the lists themselves).
//
// Two vertices share a candidate color exactly when they co-occur in some
// bucket, so enumerating within-bucket pairs *is* the shares-color test:
// no per-pair list intersection is ever computed, and the edge oracle is the
// only per-pair work left.
type Buckets struct {
	P   int
	Off []int64
	Vtx []int32
	// RowWeight[i] counts the bucket co-occurrences (j, i) with j > i over
	// all of i's colors — an upper bound on row i's candidate pairs before
	// deduplication, and the load measure for weighted row chunking.
	// Σ RowWeight = PairWork.
	RowWeight []int64
}

// NewBuckets builds the inverted index in two counting passes over the
// lists, Θ(n·L) time and space.
func NewBuckets(lists Lists) *Buckets {
	return NewBucketsIn(nil, lists)
}

// NewBucketsIn is NewBuckets drawing the index storage (and the counting
// scratch) from an arena; a nil arena allocates fresh.
func NewBucketsIn(a *Arena, lists Lists) *Buckets {
	n, P := lists.Len(), lists.Palette()
	b := &Buckets{}
	var cnt []int64
	if a != nil {
		if a.bk == nil {
			a.bk = &Buckets{}
		}
		b = a.bk
		a.cnt = grow.Zeroed(a.cnt, P)
		cnt = a.cnt
	} else {
		cnt = make([]int64, P)
	}
	b.P = P
	for i := 0; i < n; i++ {
		for _, c := range lists.List(i) {
			cnt[c]++
		}
	}
	b.Off = graph.ExclusiveSumInto(cnt, grow.Slice(b.Off, P+1))
	b.Vtx = grow.Slice(b.Vtx, int(b.Off[P]))
	// Reuse the counting pass as the fill cursor.
	copy(cnt, b.Off[:P])
	for i := 0; i < n; i++ {
		for _, c := range lists.List(i) {
			b.Vtx[cnt[c]] = int32(i)
			cnt[c]++
		}
	}
	// Buckets are ascending by construction (vertices inserted in id order),
	// so the member at position k of a bucket of size s has s−1−k larger
	// co-members — the pairs its row will enumerate from that bucket.
	b.RowWeight = grow.Zeroed(b.RowWeight, n)
	for c := 0; c < P; c++ {
		members := b.Vtx[b.Off[c]:b.Off[c+1]]
		for k, j := range members {
			b.RowWeight[j] += int64(len(members) - 1 - k)
		}
	}
	return b
}

// Bytes returns the index footprint for budget accounting (device builders
// ship the index alongside the lists): the live entries, not the possibly
// arena-pooled capacity — budget decisions must not depend on what a warm
// arena previously held.
func (b *Buckets) Bytes() int64 {
	return int64(len(b.Off))*8 + int64(len(b.Vtx))*4 + int64(len(b.RowWeight))*8
}

// PairWork returns Σ_c |bucket_c|·(|bucket_c|−1)/2, the kernel's total pair
// enumerations before deduplication — the Θ(Σ_c |bucket_c|²) bound that
// replaces the all-pairs m(m−1)/2.
func (b *Buckets) PairWork() int64 {
	var total int64
	for c := 0; c < b.P; c++ {
		s := b.Off[c+1] - b.Off[c]
		total += s * (s - 1) / 2
	}
	return total
}

// Scratch is the per-worker state of the row scan: a seen-bitset, the
// candidate list of the current row, and the batch-test hit buffer. One
// Scratch may be reused across any number of sequential row scans;
// concurrent rows need separate Scratches.
type Scratch struct {
	seen bitvec.Bits
	cand []int32
	hits []bool
}

// NewScratch returns scratch state for graphs of n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{seen: bitvec.NewBits(n)}
}

// grow widens the seen-bitset to n vertices. The bitset is all-zero between
// rows (CollectRow clears exactly the bits it set), so growing may simply
// replace it.
func (s *Scratch) grow(n int) {
	if len(s.seen)*64 < n {
		s.seen = bitvec.NewBits(n)
	}
}

// hitsFor returns the hit buffer resized for n candidates.
func (s *Scratch) hitsFor(n int) []bool {
	s.hits = grow.Slice(s.hits, n)
	return s.hits
}

// Bytes returns the scratch footprint: the seen-bitset only. The candidate
// and hit buffers are transient append storage, excluded from the memory
// model like all such storage (see ScratchBytes) — and, being arena-pooled,
// their capacities reflect history, not this build.
func (s *Scratch) Bytes() int64 {
	return s.seen.Bytes()
}

// ScratchBytes returns the bitset footprint of a Scratch for n vertices
// without allocating one — for charging per-worker scratch to a tracker
// up front (the candidate slice grows on demand and is excluded, as
// transient append storage is throughout the memory model).
func ScratchBytes(n int) int64 {
	return int64((n+63)/64) * 8
}

// CollectRow gathers row i's deduplicated candidate partners — every j > i
// sharing at least one candidate color with i, in bucket-discovery order —
// into the scratch candidate buffer and returns it. Duplicates (pairs
// sharing several colors) are suppressed with the scratch bitset, which is
// restored to all-zero before returning. Each bucket is entered at the first
// member greater than i via binary search: rows near the top of a bucket
// never rescan the vertices below them. The returned slice is valid until
// the next collection on the same Scratch.
func (b *Buckets) CollectRow(lists Lists, i int, s *Scratch) []int32 {
	s.cand = s.cand[:0]
	for _, c := range lists.List(i) {
		members := b.Vtx[b.Off[c]:b.Off[c+1]]
		k := sort.Search(len(members), func(k int) bool { return members[k] > int32(i) })
		for _, j := range members[k:] {
			if !s.seen.Test(int(j)) {
				s.seen.Set(int(j))
				s.cand = append(s.cand, j)
			}
		}
	}
	for _, j := range s.cand {
		s.seen.Clear(int(j))
	}
	return s.cand
}

// ForRow calls f exactly once for every vertex j > i sharing at least one
// candidate color with i (in bucket-discovery order). The bitset is restored
// to all-zero before f runs, so f may recurse into other rows. Returns false
// if f aborted the scan. Kept for callers that want per-candidate control;
// the builders use the batched scan below.
func (b *Buckets) ForRow(lists Lists, i int, s *Scratch, f func(j int32) bool) bool {
	for _, j := range b.CollectRow(lists, i, s) {
		if !f(j) {
			return false
		}
	}
	return true
}

// scanRows runs the kernel over rows [lo, hi), appending the surviving
// edges to coo and returning the number of pairs tested. Each row is one
// batched edge-oracle consultation: the row's deduplicated candidates are
// collected, tested in a single HasRow call (bucket co-occurrence already
// proved each pair shares a color), and the hits appended in candidate
// order — bit-identical COO output to the historical per-pair loop, minus
// a closure call and an oracle dispatch per pair. This is the one
// conflict-test loop every builder executes.
func (b *Buckets) scanRows(o BatchEdgeOracle, lists Lists, lo, hi int, s *Scratch, coo *graph.COO) int64 {
	var calls int64
	for i := lo; i < hi; i++ {
		cand := b.CollectRow(lists, i, s)
		if len(cand) == 0 {
			continue
		}
		hits := s.hitsFor(len(cand))
		o.HasRow(i, cand, hits)
		calls += int64(len(cand))
		for k, j := range cand {
			if hits[k] {
				coo.Append(int32(i), j)
			}
		}
	}
	return calls
}

// ReferenceAllPairs is the pre-bucketing construction kept as the benchmark
// and equivalence baseline: a sequential scan of all m(m−1)/2 pairs with a
// per-pair sorted-list intersection. It is not a registered backend — every
// production builder uses the bucket kernel — but the package tests assert
// edge-set equality against it and BenchmarkConflictBuild measures the gap.
func ReferenceAllPairs(o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	m := o.Len()
	coo := &graph.COO{N: m}
	var st Stats
	for i := 0; i < m; i++ {
		li := lists.List(i)
		for j := i + 1; j < m; j++ {
			st.PairsTested++
			if intersectSorted(li, lists.List(j)) && o.Has(i, j) {
				coo.Append(int32(i), int32(j))
			}
		}
	}
	return finishCOO(coo, tr, st)
}

// intersectSorted reports whether two ascending slices share an element.
func intersectSorted(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
