package backend

import (
	"context"
	"sync/atomic"
	"testing"

	"picasso/internal/gpusim"
	"picasso/internal/graph"
)

// batchTestOracle is a batch-capable test oracle that records whether the
// kernel actually used the row interface (atomically: the parallel and
// device builders call HasRow from concurrent workers).
type batchTestOracle struct {
	o       graph.Oracle
	rowCall *atomic.Int64
}

func (b batchTestOracle) Len() int          { return b.o.NumVertices() }
func (b batchTestOracle) Has(i, j int) bool { return b.o.HasEdge(i, j) }
func (b batchTestOracle) HasRow(i int, js []int32, out []bool) {
	b.rowCall.Add(1)
	for k, j := range js {
		out[k] = b.o.HasEdge(i, int(j))
	}
}

func TestAsBatchPassesThroughAndAdapts(t *testing.T) {
	o := graph.RandomOracle{N: 50, P: 0.5, Seed: 2}
	batched := batchTestOracle{o: o, rowCall: new(atomic.Int64)}
	if _, ok := AsBatch(batched).(batchTestOracle); !ok {
		t.Fatal("batch-capable oracle was wrapped instead of passed through")
	}
	plain := AsBatch(testOracle{o})
	js := []int32{1, 2, 3, 49}
	out := make([]bool, len(js))
	plain.HasRow(0, js, out)
	for k, j := range js {
		if out[k] != o.HasEdge(0, int(j)) {
			t.Fatalf("adapter HasRow[%d] = %v, HasEdge = %v", j, out[k], o.HasEdge(0, int(j)))
		}
	}
}

func TestBatchOracleMatchesPerPairAcrossBuilders(t *testing.T) {
	// A batch-capable oracle must yield the exact edge set of the per-pair
	// adapter on every builder, and the kernel must actually call HasRow.
	const n = 200
	o := graph.RandomOracle{N: n, P: 0.5, Seed: 31}
	lists := newTestLists(n, 25, 5, 7)
	refCG, _, err := ReferenceAllPairs(testOracle{o}, lists, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedEdges(t, refCG)
	for name, b := range testBuilders(t) {
		calls := new(atomic.Int64)
		cg, _, err := b.Build(context.Background(), batchTestOracle{o: o, rowCall: calls}, lists, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := sortedEdges(t, cg)
		if len(got) != len(want) {
			t.Fatalf("%s: %d edges, want %d", name, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s: edge %d is %v, want %v", name, k, got[k], want[k])
			}
		}
		if calls.Load() == 0 {
			t.Errorf("%s: batched oracle's HasRow was never consulted", name)
		}
	}
}

func TestArenaReuseKeepsEdgeSetsIdentical(t *testing.T) {
	// Builds on a warm arena must be indistinguishable from fresh-buffer
	// builds, across repeated uses and shrinking/growing instances — the
	// service steady-state contract.
	shapes := []struct {
		n, P, L int
		density float64
		seed    int64
	}{
		{180, 22, 5, 0.5, 3},
		{60, 9, 3, 0.7, 4}, // shrink: pooled buffers larger than needed
		{240, 30, 6, 0.4, 5},
	}
	mk := func(name string, cfg Config) ConflictBuilder {
		b, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, backendName := range []string{"sequential", "parallel", "gpu", "multigpu"} {
		arena := NewArena()
		cfg := Config{Workers: 3, Arena: arena}
		fresh := Config{Workers: 3}
		switch backendName {
		case "gpu":
			cfg.Device = gpusim.NewDevice("a", 1<<30, 3)
			fresh.Device = gpusim.NewDevice("f", 1<<30, 3)
		case "multigpu":
			cfg.Devices = []*gpusim.Device{gpusim.NewDevice("a0", 1<<30, 2), gpusim.NewDevice("a1", 1<<30, 2)}
			fresh.Devices = []*gpusim.Device{gpusim.NewDevice("f0", 1<<30, 2), gpusim.NewDevice("f1", 1<<30, 2)}
		}
		warm := mk(backendName, cfg)
		cold := mk(backendName, fresh)
		for round := 0; round < 2; round++ { // second round: arena fully warm
			for si, sh := range shapes {
				o := testOracle{graph.RandomOracle{N: sh.n, P: sh.density, Seed: uint64(sh.seed)}}
				lists := newTestLists(sh.n, sh.P, sh.L, sh.seed)
				wantCG, wantSt, err := cold.Build(context.Background(), o, lists, nil)
				if err != nil {
					t.Fatal(err)
				}
				gotCG, gotSt, err := warm.Build(context.Background(), o, lists, nil)
				if err != nil {
					t.Fatalf("%s round %d shape %d: %v", backendName, round, si, err)
				}
				want, got := sortedEdges(t, wantCG), sortedEdges(t, gotCG)
				if len(got) != len(want) {
					t.Fatalf("%s round %d shape %d: %d edges, want %d",
						backendName, round, si, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("%s round %d shape %d: edge %d is %v, want %v",
							backendName, round, si, k, got[k], want[k])
					}
				}
				if gotSt.PairsTested != wantSt.PairsTested {
					t.Errorf("%s round %d shape %d: %d pairs tested, want %d",
						backendName, round, si, gotSt.PairsTested, wantSt.PairsTested)
				}
				// Device accounting must be history-independent: a warm
				// arena's pooled capacities may exceed this build's needs,
				// but every budget charge is length-based, so the Algorithm 3
				// decisions and peaks match a fresh run exactly.
				if gotSt.OnDevice != wantSt.OnDevice || gotSt.DevicePeakBytes != wantSt.DevicePeakBytes {
					t.Errorf("%s round %d shape %d: device accounting (onDevice %v, peak %d) differs from fresh (%v, %d)",
						backendName, round, si, gotSt.OnDevice, gotSt.DevicePeakBytes, wantSt.OnDevice, wantSt.DevicePeakBytes)
				}
			}
		}
	}
}
