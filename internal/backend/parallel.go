package backend

import (
	"context"

	"picasso/internal/graph"
	"picasso/internal/memtrack"
	"picasso/internal/par"
)

func init() {
	Register("parallel", func(cfg Config) (ConflictBuilder, error) {
		return parBuilder{workers: cfg.Workers, arena: cfg.Arena}, nil
	})
}

// parBuilder is the multicore CPU path: rows are split into contiguous
// chunks balanced by the buckets' per-row pair weights (not by row count —
// candidate pairs are triangular and bucket-skewed), each worker runs the
// kernel into a private edge buffer with private scratch, and the buffers
// are concatenated in worker order so the edge list — and therefore the
// downstream coloring — is identical to the sequential builder's.
type parBuilder struct {
	workers int
	arena   *Arena
}

func (parBuilder) Name() string { return "parallel" }

func (b parBuilder) Build(ctx context.Context, o EdgeOracle, lists Lists, tr *memtrack.Tracker) (*ConflictGraph, Stats, error) {
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}
	m := o.Len()
	workers := b.workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	a := b.arena
	bk := NewBucketsIn(a, lists)
	// Charge the index plus every worker's seen-bitset: the parallel path
	// holds workers× the scratch the sequential one does, and the byte-exact
	// memory model should say so.
	release := tr.Scoped(bk.Bytes() + int64(workers)*ScratchBytes(m))
	defer release()
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}

	// Lanes are reserved serially here; inside the weighted loop each worker
	// touches only its own lane, so arena reuse stays race-free.
	a.reserveLanes(workers)
	bo := AsBatch(o)
	locals := make([]*graph.COO, workers)
	calls := a.callsBuf(workers)
	par.ForWeightedChunks(workers, bk.RowWeight, func(lo, hi, w int) {
		if Cancelled(ctx) != nil {
			return
		}
		s := a.scratch(w, m)
		local := a.laneCOO(w, m)
		calls[w] = bk.scanRows(bo, lists, lo, hi, s, local)
		locals[w] = local
	})
	if err := Cancelled(ctx); err != nil {
		return nil, Stats{}, err
	}

	coo := a.mainCOO(m)
	var st Stats
	for w, local := range locals {
		if local == nil {
			continue
		}
		coo.U = append(coo.U, local.U...)
		coo.V = append(coo.V, local.V...)
		st.PairsTested += calls[w]
	}
	return finishCOOIn(a, coo, tr, st)
}
