// Package faultpoint is the injectable fault seam of the durability
// stack: named hook points compiled into production code paths (journal
// appends, artifact publication, checkpoint persistence, the coloring
// worker) that are inert no-ops until a test — or a crash harness — arms
// them. A hook may return an error (injected as that operation's failure),
// panic (exercising the worker's panic isolation), or kill the process
// (Crash), which is how the crash-recovery tests produce torn journal
// tails and lost checkpoints on demand instead of waiting for real power
// loss.
//
// The registry is safe for concurrent use (the coloring pool hits points
// from many goroutines under -race); a disarmed point costs one read lock
// and a map probe, and points are hit at lifecycle frequency (per state
// transition, per shard), never per vertex.
package faultpoint

import (
	"fmt"
	"os"
	"sync"
)

// Hook is one armed fault: called every time its point is hit, with the
// hit ordinal (1-based) and the point-specific argument (a shard index, a
// build count; 0 when the point carries none). A non-nil return is
// injected as the operation's error.
type Hook func(hit int, arg int) error

var (
	mu     sync.RWMutex
	points map[string]*point
)

type point struct {
	fn   Hook
	hits int
}

// Set arms a fault point. Re-arming replaces the hook and resets the hit
// counter.
func Set(name string, fn Hook) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	points[name] = &point{fn: fn}
}

// Clear disarms one fault point.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
}

// Reset disarms every fault point — test cleanup.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
}

// Armed reports whether a point has a hook installed, for call sites that
// must do extra setup (e.g. wrap a builder) only when a fault is live.
func Armed(name string) bool {
	mu.RLock()
	defer mu.RUnlock()
	_, ok := points[name]
	return ok
}

// Hit fires a fault point: a no-op returning nil unless the point is
// armed, in which case the hook runs with the incremented hit count and
// arg, and its error (or panic) is the caller's to inject.
func Hit(name string, arg int) error {
	mu.RLock()
	p := points[name]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	mu.Lock()
	p.hits++
	hit := p.hits
	fn := p.fn
	mu.Unlock()
	return fn(hit, arg)
}

// FailOn returns a hook that injects err on exactly the k-th hit (1-based)
// and passes every other hit — the "builder error on shard k" shape.
func FailOn(k int, err error) Hook {
	return func(hit, _ int) error {
		if hit == k {
			return err
		}
		return nil
	}
}

// PanicOn returns a hook that panics with msg on exactly the k-th hit —
// for exercising the worker pool's panic isolation.
func PanicOn(k int, msg string) Hook {
	return func(hit, _ int) error {
		if hit == k {
			panic(msg)
		}
		return nil
	}
}

// Crash terminates the process immediately and non-gracefully (no deferred
// functions, no flushes) — the in-process stand-in for kill -9, used by
// hooks that simulate dying between two durability steps. The exit code
// marks the death as deliberate for the harness driving it.
func Crash(name string) {
	fmt.Fprintf(os.Stderr, "faultpoint: crashing at %s\n", name)
	os.Exit(42)
}
