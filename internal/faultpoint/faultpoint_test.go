package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nothing.armed", 0); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}

func TestFailOnKthHit(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Set("p", FailOn(3, boom))
	for i := 1; i <= 5; i++ {
		err := Hit("p", i)
		if i == 3 && !errors.Is(err, boom) {
			t.Fatalf("hit %d: want boom, got %v", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: want nil, got %v", i, err)
		}
	}
}

func TestSetResetsHitCounter(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Set("p", FailOn(1, boom))
	if err := Hit("p", 0); !errors.Is(err, boom) {
		t.Fatalf("first arm: want boom, got %v", err)
	}
	Set("p", FailOn(1, boom))
	if err := Hit("p", 0); !errors.Is(err, boom) {
		t.Fatalf("re-arm did not reset counter: got %v", err)
	}
}

func TestClearAndArmed(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", FailOn(1, errors.New("x")))
	if !Armed("p") {
		t.Fatal("want Armed after Set")
	}
	Clear("p")
	if Armed("p") {
		t.Fatal("want disarmed after Clear")
	}
	if err := Hit("p", 0); err != nil {
		t.Fatalf("cleared Hit returned %v", err)
	}
}

func TestPanicOn(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", PanicOn(2, "injected"))
	if err := Hit("p", 0); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	defer func() {
		if rec := recover(); rec != "injected" {
			t.Fatalf("want panic \"injected\", got %v", rec)
		}
	}()
	Hit("p", 0)
	t.Fatal("hit 2 did not panic")
}

// Concurrent hits against armed and disarmed points must be race-clean;
// the ordinal passed to the hook must count every hit exactly once.
func TestConcurrentHits(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	var seen sync.Map
	Set("p", func(hit, _ int) error {
		if _, dup := seen.LoadOrStore(hit, true); dup {
			t.Errorf("ordinal %d delivered twice", hit)
		}
		return nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Hit("p", i)
				Hit("disarmed", i)
			}
		}()
	}
	wg.Wait()
	for i := 1; i <= 800; i++ {
		if _, ok := seen.Load(i); !ok {
			t.Fatalf("ordinal %d never delivered", i)
		}
	}
}
