// Quickstart: group a handful of Pauli strings into measurable unitaries.
//
// This is the paper's Fig. 1 workflow on the H2/sto-3g example: 17 Pauli
// strings whose anticommutation cliques compress into ~9 unitary groups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"picasso"
)

func main() {
	// The 17 Pauli strings of the H2 molecule in the sto-3g basis
	// (4 qubits), as in the paper's Fig. 1.
	set, err := picasso.ParsePauliStrings([]string{
		"IIII", "XYXY", "YYXY", "XXXY", "YXXY", "XYYY", "YYYY", "XXYY",
		"YXYY", "XYXX", "YYXX", "XXXX", "YXXX", "XYYX", "YYYX", "XXYX",
		"YXYX",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Aggressive mode trades extra conflict-graph work for the fewest
	// groups — the right choice for tiny inputs.
	res, err := picasso.ColorPauli(set, picasso.Aggressive(7))
	if err != nil {
		log.Fatal(err)
	}
	if err := picasso.VerifyGrouping(set, res.Colors); err != nil {
		log.Fatal(err) // every group is a mutually anticommuting clique
	}

	groups := picasso.Groups(set, res.Colors)
	fmt.Printf("%d Pauli strings -> %d unitary groups\n\n", set.Len(), len(groups))
	for i, g := range groups {
		fmt.Printf("group %d:", i)
		for _, idx := range g {
			fmt.Printf(" %s", set.At(idx))
		}
		fmt.Println()
	}
}
