// Dense graph: color a large ~50%-dense graph that is never materialized.
//
// A 60,000-vertex graph at density 0.5 has ~900 million edges — a CSR of it
// would need ~7.2 GB. Picasso consults the edge oracle on demand and only
// ever stores the per-iteration conflict subgraph, demonstrating the
// paper's headline memory result on a generic (non-quantum) input.
//
//	go run ./examples/densegraph
package main

import (
	"fmt"
	"log"
	"time"

	"picasso"
)

func main() {
	const (
		n       = 60_000
		density = 0.5
	)
	o := picasso.RandomGraph(n, density, 2024)
	fullEdges := float64(n) * float64(n-1) / 2 * density
	csrBytes := fullEdges * 2 * 4 // two int32 entries per edge
	fmt.Printf("graph: %d vertices, ~%.0fM edges (a CSR would need ~%.1f GB)\n\n",
		n, fullEdges/1e6, csrBytes/1e9)

	var tr picasso.MemoryTracker
	opts := picasso.Normal(1)
	opts.Tracker = &tr

	t0 := time.Now()
	res, err := picasso.Color(o, opts)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	fmt.Printf("colored with %d colors in %v\n", res.NumColors, elapsed.Round(time.Millisecond))
	fmt.Printf("iterations: %d\n", len(res.Iters))
	fmt.Printf("largest conflict subgraph: %d edges (%.2f%% of the full graph)\n",
		res.MaxConflictEdges, 100*float64(res.MaxConflictEdges)/fullEdges)
	fmt.Printf("peak tracked memory: %.1f MB — %.0fx below the full CSR\n",
		float64(res.HostPeakBytes)/1e6, csrBytes/float64(res.HostPeakBytes))

	fmt.Println("\nper-iteration profile:")
	for _, it := range res.Iters {
		fmt.Printf("  iter %d: %6d active, palette %5d, |Ec| %9d, failed %5d\n",
			it.Iteration, it.ActiveVertices, it.Palette, it.ConflictEdges, it.Failed)
	}

	// Spot-verify on a sample (full verification is quadratic).
	sample := picasso.RandomGraph(2000, density, 2024)
	resS, err := picasso.Color(sample, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := picasso.Verify(sample, resS.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverification on a 2,000-vertex instance of the same family: OK")
}
