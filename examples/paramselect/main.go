// Parameter selection: the paper's quality/work tradeoff (§VI) in action.
//
// Picasso's palette fraction P and list factor α trade final colors against
// conflict-graph work (memory and time). Tune sweeps the grid and picks the
// configuration minimizing β·colors + (1−β)·work for your β; the RF
// predictor trained by cmd/trainpredictor generalizes this across
// instances.
//
//	go run ./examples/paramselect
package main

import (
	"fmt"
	"log"
	"time"

	"picasso"
)

func main() {
	// A molecular instance at CI-friendly scale.
	set, err := picasso.BuildMolecule("H4 1D 631g", 5000)
	if err != nil {
		log.Fatal(err)
	}
	o := pauliOracle{set}
	fmt.Printf("instance: %d Pauli strings on %d qubits\n\n", set.Len(), set.Qubits())

	fmt.Println("β controls the tradeoff: 1 = fewest colors, 0 = least work")
	for _, beta := range []float64{0.9, 0.5, 0.1} {
		opts, err := picasso.Tune(o, beta, 1)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		res, err := picasso.ColorPauli(set, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("β=%.1f -> P'=%5.2f%%, α=%.1f: %5d colors, max |Ec| %8d, %v\n",
			beta, opts.PaletteFrac*100, opts.Alpha,
			res.NumColors, res.MaxConflictEdges, time.Since(t0).Round(time.Millisecond))
	}

	fmt.Println("\nThe sweep behind Tune is what trains the paper's random-forest")
	fmt.Println("predictor; see cmd/trainpredictor for the full §VI pipeline.")
}

// pauliOracle adapts a PauliSet to the generic Oracle interface so Tune can
// sweep it (ColorPauli does this internally).
type pauliOracle struct{ set *picasso.PauliSet }

func (p pauliOracle) NumVertices() int      { return p.set.Len() }
func (p pauliOracle) HasEdge(u, v int) bool { return p.set.CommuteEdge(u, v) }
