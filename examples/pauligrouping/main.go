// Pauli grouping: the full quantum-measurement workflow on a molecular
// workload — build a Hamiltonian-plus-ansatz instance, color its
// commutation graph, and report the measurement-cost reduction, which is
// the application the paper optimizes (§II).
//
//	go run ./examples/pauligrouping
package main

import (
	"fmt"
	"log"
	"time"

	"picasso"
)

func main() {
	// Build a synthetic H6 chain instance grown to ~8000 strings —
	// the scale of the paper's smallest Table II entry. Each Pauli string
	// is one term a quantum computer would otherwise measure separately.
	fmt.Println("building H6 1D sto3g instance...")
	set, err := picasso.BuildMolecule("H6 1D sto3g", 8000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d Pauli strings on %d qubits\n\n", set.Len(), set.Qubits())

	// Compare the two operating points from the paper's Table III.
	for _, cfg := range []struct {
		name string
		opts picasso.Options
	}{
		{"normal (P=12.5%, α=2) ", picasso.Normal(1)},
		{"aggressive (P=3%, α=30)", picasso.Aggressive(1)},
	} {
		var tr picasso.MemoryTracker
		opts := cfg.opts
		opts.Tracker = &tr
		t0 := time.Now()
		res, err := picasso.ColorPauli(set, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := picasso.VerifyGrouping(set, res.Colors); err != nil {
			log.Fatal(err)
		}
		groups := picasso.Groups(set, res.Colors)
		largest := 0
		for _, g := range groups {
			if len(g) > largest {
				largest = len(g)
			}
		}
		fmt.Printf("%s: %5d groups (%.1f%% of strings, %.1fx measurement reduction)\n",
			cfg.name, len(groups),
			100*float64(len(groups))/float64(set.Len()),
			float64(set.Len())/float64(len(groups)))
		fmt.Printf("  largest group %d strings; %d iterations; %v; peak tracked memory %.1f MB\n",
			largest, len(res.Iters), time.Since(t0).Round(time.Millisecond),
			float64(res.HostPeakBytes)/1e6)
	}

	fmt.Println("\nEvery group is a set of mutually anticommuting strings, so each")
	fmt.Println("group can be rotated into a single measurable unitary (paper Eq. 2).")
}
