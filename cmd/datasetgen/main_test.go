package main

import (
	"reflect"
	"testing"

	"picasso/internal/graph"
	"picasso/internal/workload"
)

// TestGraphRoundTrip pins the -graph/-format contract: every emitted file
// parses back into a CSR bit-identical to the generator's, in both
// formats, across all three benchmark families.
func TestGraphRoundTrip(t *testing.T) {
	for _, name := range []string{"queen9_9", "myciel5", "reg1024"} {
		g, canonical, err := workload.LookupGraph(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if canonical != name {
			t.Fatalf("%s canonicalized to %q", name, canonical)
		}
		for _, format := range []string{"dimacs", "edgelist"} {
			data, _, err := renderGraph(g, format)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, format, err)
			}
			back, _, err := graph.ParseGraph(data)
			if err != nil {
				t.Fatalf("%s/%s: parsing emitted file: %v", name, format, err)
			}
			if !reflect.DeepEqual(g, back) {
				t.Errorf("%s/%s: round-tripped CSR is not bit-identical", name, format)
			}
		}
	}
}

func TestRenderGraphRejectsUnknownFormat(t *testing.T) {
	g, _, err := workload.LookupGraph("queen5_5")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := renderGraph(g, "graphml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
