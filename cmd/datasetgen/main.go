// Command datasetgen materializes workload instances as text files: Table
// II molecule instances as one Pauli string and coefficient per line
// (consumable by `picasso -strings` or external tooling), and benchmark
// graph instances as DIMACS or edge-list files (consumable by
// `picasso -graph` or any solver that reads the formats).
//
//	datasetgen -name "H6 3D sto3g" -out h6_3d.txt
//	datasetgen -all -dir dataset/          # every small-class instance
//	datasetgen -graph queen9_9 -format dimacs -out queen9_9.col
//	datasetgen -graph reg4096 -format edgelist
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"picasso/internal/graph"
	"picasso/internal/workload"
)

func main() {
	var (
		name   = flag.String("name", "", "Table II instance name")
		graphN = flag.String("graph", "", "benchmark graph name (queen9_9, myciel5, reg4096)")
		format = flag.String("format", "dimacs", "graph output format for -graph: dimacs | edgelist")
		all    = flag.Bool("all", false, "emit every small-class instance")
		dir    = flag.String("dir", ".", "output directory for -all")
		out    = flag.String("out", "", "output file for -name/-graph (default: derived)")
		target = flag.Int("target", 0, "term-count target (0 = Table II target)")
		stats  = flag.Bool("stats", false, "also measure and print edge counts")
	)
	flag.Parse()

	opts := workload.DefaultBuild()
	switch {
	case *all:
		for _, inst := range workload.SmallSet() {
			path := filepath.Join(*dir, fileName(inst.Name))
			emit(inst, opts, *target, path, *stats)
		}
	case *graphN != "":
		emitGraph(*graphN, *format, *out)
	case *name != "":
		inst, err := workload.ByName(*name)
		if err != nil {
			fatal("%v", err)
		}
		path := *out
		if path == "" {
			path = fileName(inst.Name)
		}
		emit(inst, opts, *target, path, *stats)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fileName(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "_") + ".paulis"
}

// emitGraph writes a benchmark-family instance in the named file format.
// The emitted bytes round-trip: parsing the file yields a CSR bit-identical
// to the generator's (renderGraph is shared with the round-trip test).
func emitGraph(name, format, out string) {
	g, canonical, err := workload.LookupGraph(name)
	if err != nil {
		fatal("%v", err)
	}
	data, ext, err := renderGraph(g, format)
	if err != nil {
		fatal("%v", err)
	}
	if out == "" {
		out = canonical + ext
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s: %d vertices, %d edges -> %s\n", canonical, g.N, len(g.Adj)/2, out)
}

// renderGraph serializes a CSR in the named format and reports the
// conventional file extension.
func renderGraph(g *graph.CSR, format string) ([]byte, string, error) {
	switch format {
	case "dimacs":
		return graph.WriteDIMACS(g), ".col", nil
	case "edgelist":
		return graph.WriteEdgeList(g), ".edges", nil
	default:
		return nil, "", fmt.Errorf("unknown -format %q (want dimacs | edgelist)", format)
	}
}

func emit(inst workload.Instance, opts workload.BuildOptions, target int, path string, stats bool) {
	if target > 0 {
		opts.MaxTerms = target
	}
	set, err := inst.Build(opts)
	if err != nil {
		fatal("building %s: %v", inst.Name, err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# %s: %d strings on %d qubits (paper: %d terms)\n",
		inst.Name, set.Len(), set.Qubits(), inst.PaperTerms)
	for i := 0; i < set.Len(); i++ {
		if set.HasCoeffs() {
			fmt.Fprintf(w, "%s %.12g\n", set.At(i).String(), set.Coeff(i))
		} else {
			fmt.Fprintln(w, set.At(i).String())
		}
	}
	if err := w.Flush(); err != nil {
		fatal("%v", err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%s: %d strings -> %s\n", inst.Name, set.Len(), path)
	if stats {
		st, err := inst.Measure(opts)
		if err != nil {
			fatal("measuring %s: %v", inst.Name, err)
		}
		fmt.Printf("  edges %d (density %.2f; paper %d)\n", st.Edges, st.Density, inst.PaperEdges)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datasetgen: "+format+"\n", args...)
	os.Exit(1)
}
