// Command picasso colors a graph or a Pauli-string workload with the
// palette-based algorithm and reports quality, work and memory statistics.
//
// Inputs (choose one):
//
//	-molecule "H6 3D sto3g"   a Table II instance (synthetic integrals)
//	-strings file.txt         one Pauli string per line ("IXYZ", ...)
//	-random n:density         a hashed Erdős–Rényi dense graph
//	-graph queen9_9           a benchmark-family instance (queen/myciel/reg)
//	-graph graph.col          a graph file: DIMACS, Matrix Market, or edge list
//
// Examples:
//
//	picasso -molecule "H6 3D sto3g" -mode aggressive -verify
//	picasso -graph myciel7 -variant equitable -verify
//	picasso -graph roads.mtx -budget 256MiB -refine -verify
//	picasso -random 100000:0.5 -p 0.125 -alpha 2 -gpu 40e9
//	picasso -strings paulis.txt -backend parallel -groups groups.txt
//	picasso -random 200000:0.5 -budget 256MiB -verify   (streamed under a budget)
//	picasso -strings paulis.txt -stream -shard 50000
//	picasso -random 20000:0.5 -budget 16MiB -refine     (stream, then claw colors back)
//	picasso -random 20000:0.5 -budget 64MiB -race-entrants 8   (portfolio race, keep the winner)
//	picasso -molecule "H6 3D sto3g" -refine-target 300  (refine toward a group count)
//
// With -artifact-dir, finished runs are persisted as content-addressed .pic
// artifacts (see docs/artifact-format.md) and prepped slabs are reused
// instead of re-parsing; -prep parses the input, writes a slab-only
// artifact, and exits — the preprocess half of a preprocess/serve split:
//
//	picasso -prep -strings paulis.txt -artifact-dir ./artifacts
//	picasso -strings paulis.txt -artifact-dir ./artifacts   (skips the parse)
//
// The same job description is accepted by the picasso-serve HTTP service
// (cmd/picasso-serve); both front ends share internal/jobspec, and both
// read and write the same artifact store.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"picasso"
	"picasso/internal/artifact"
	"picasso/internal/bucket"
	"picasso/internal/jobspec"
	"picasso/internal/memtrack"
)

func main() {
	var (
		molecule = flag.String("molecule", "", "Table II instance name, e.g. \"H6 3D sto3g\"")
		stringsF = flag.String("strings", "", "file with one Pauli string per line")
		random   = flag.String("random", "", "random dense graph as n:density, e.g. 50000:0.5")
		graphF   = flag.String("graph", "", "general graph: a benchmark name (queen9_9, myciel5, reg4096) or a file (DIMACS .col, Matrix Market .mtx, edge list)")
		variant  = flag.String("variant", "", "coloring variant: equitable | distance2 (empty = standard)")
		mode     = flag.String("mode", "normal", "normal | aggressive | custom")
		pfrac    = flag.Float64("p", 0.125, "palette size as a fraction of |V| (custom mode)")
		alpha    = flag.Float64("alpha", 2, "list-size factor (custom mode)")
		strategy = flag.String("strategy", "dynamic", "conflict coloring: dynamic | natural | largest | random")
		backendF = flag.String("backend", "auto", "conflict construction backend: "+strings.Join(picasso.Backends(), " | "))
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all cores, 1 = sequential)")
		gpu      = flag.Float64("gpu", 0, "simulated device budget in bytes (0 = CPU path)")
		target   = flag.Int("target", 0, "grow molecule instances toward this term count (0 = Table II target)")
		stream   = flag.Bool("stream", false, "color in shards with the partitioned streaming engine")
		shard    = flag.Int("shard", 0, "streaming shard size (0 = derive from -budget; implies -stream)")
		budget   = flag.String("budget", "", "host-memory budget, e.g. 512MiB or 2GB (implies -stream)")
		pipeline = flag.Bool("pipeline", false, "overlap each shard's build with its predecessor's coloring (implies -stream)")
		specul   = flag.Int("speculate", 0, "color this many shards concurrently with cross-shard repair (>=2; implies -stream)")
		raceN    = flag.Int("race-entrants", 0, "race this many entrant configurations (seed/strategy/shard/schedule variants) and keep the fewest-color winner (>=2; implies -stream)")
		deadline = flag.String("deadline", "", "wall-clock limit on the run, e.g. 90s or 5m (empty = none)")
		refine   = flag.Bool("refine", false, "run the palette-refinement pass after coloring (claw back colors)")
		refineR  = flag.Int("refine-rounds", 0, "max refinement rounds (0 = engine default; implies -refine)")
		refineT  = flag.Int("refine-target", 0, "stop refining at this many colors (0 = converge; implies -refine)")
		verify   = flag.Bool("verify", false, "verify the coloring against the input graph")
		groupsF  = flag.String("groups", "", "write unitary groups to this file (Pauli inputs)")
		artDir   = flag.String("artifact-dir", "", "content-addressed .pic store: reuse a prepped slab before parsing, persist the finished run")
		prep     = flag.Bool("prep", false, "parse the input, write a slab-only artifact to -artifact-dir, and exit")
		verbose  = flag.Bool("v", false, "print per-iteration statistics")
	)
	flag.Parse()

	spec := jobspec.Spec{
		Random:    *random,
		Instance:  *molecule,
		Variant:   *variant,
		Target:    *target,
		Mode:      *mode,
		PFrac:     *pfrac,
		Alpha:     *alpha,
		Strategy:  *strategy,
		Backend:   *backendF,
		Seed:      *seed,
		Workers:   *workers,
		Stream:    *stream,
		Shard:     *shard,
		Budget:    *budget,
		Pipeline:  *pipeline,
		Speculate: *specul,
		Deadline:  *deadline,
	}
	if *mode != jobspec.ModeCustom {
		spec.PFrac, spec.Alpha = 0, 0
	}
	if *raceN != 0 {
		// != 0, not >= 2: a bad value must reach Normalize's validation.
		spec.Portfolio = &jobspec.PortfolioSpec{Entrants: *raceN}
	}
	if *refine || *refineR != 0 || *refineT != 0 {
		// != 0, not > 0: a negative value must reach Normalize's validation
		// and fail fast, not silently drop the refinement.
		spec.Refine = &jobspec.RefineSpec{Rounds: *refineR, TargetColors: *refineT}
	}
	if *stringsF != "" {
		spec.Strings = readStrings(*stringsF)
	}
	if *graphF != "" {
		// A readable path is a graph file shipped inline (Normalize collapses
		// it to its content key); anything else is a benchmark-family name.
		if data, err := os.ReadFile(*graphF); err == nil {
			spec.GraphData = string(data)
		} else {
			spec.Graph = *graphF
		}
	}
	if spec.Random == "" && spec.Instance == "" && len(spec.Strings) == 0 &&
		spec.Graph == "" && spec.GraphData == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := spec.Normalize(); err != nil {
		fatal("%v", err)
	}

	var store *artifact.Store
	if *artDir != "" {
		var err error
		if store, err = artifact.NewStore(*artDir); err != nil {
			fatal("%v", err)
		}
	}
	if *prep {
		if store == nil {
			fatal("-prep requires -artifact-dir")
		}
		runPrep(store, spec)
		return
	}

	opts := spec.Options()
	if *gpu > 0 {
		opts.Device = picasso.NewDevice("sim", int64(*gpu), *workers)
	}
	var tr memtrack.Tracker
	opts.Tracker = &tr

	var (
		oracle picasso.Oracle
		set    *picasso.PauliSet
		err    error
	)
	if store != nil {
		// A prep artifact matching this spec hands back the parsed input and
		// skips the parse (and, for molecule instances, the synthesis).
		if art, err := store.Get(spec.Canonical()); err == nil {
			switch {
			case art.Set != nil:
				set = art.Set
				fmt.Printf("artifact %s: loaded prepped slab, parse skipped\n", artifact.Address(art.Spec))
			case art.Graph != nil && spec.GraphCSR() == nil:
				if aerr := spec.AttachGraph(art.Graph); aerr == nil {
					fmt.Printf("artifact %s: loaded prepped graph, parse skipped\n", artifact.Address(art.Spec))
				}
			}
		}
	}
	if set == nil {
		oracle, set, err = spec.BuildInput()
		if err != nil {
			fatal("building input: %v", err)
		}
	}
	switch {
	case spec.Instance != "":
		tr.Alloc(set.Bytes())
		fmt.Printf("instance %q: %d strings on %d qubits\n", spec.Instance, set.Len(), set.Qubits())
	case len(spec.Strings) > 0:
		tr.Alloc(set.Bytes())
		fmt.Printf("file %q: %d strings on %d qubits\n", *stringsF, set.Len(), set.Qubits())
	case spec.Graph != "":
		fmt.Printf("graph %q: %d vertices\n", spec.Graph, oracle.NumVertices())
	default:
		fmt.Printf("random graph: %d vertices\n", oracle.NumVertices())
	}
	if spec.Variant != "" {
		fmt.Printf("variant: %s\n", spec.Variant)
	}

	// For streamed runs, keep the last resumable shard-boundary snapshot:
	// it rides along in the persisted artifact so a later process could
	// ResumeStream from it.
	var lastCheckpoint []byte
	if store != nil {
		opts.Checkpoint = func(st picasso.RunState) {
			if !st.Resumable() {
				return
			}
			if blob, err := json.Marshal(st); err == nil {
				lastCheckpoint = blob
			}
		}
	}

	ctx := context.Background()
	if d := spec.DeadlineDuration(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	t0 := time.Now()
	var res *picasso.Result
	var pres *picasso.PortfolioResult
	switch {
	case spec.PortfolioEntrants() >= 2:
		popts := picasso.PortfolioOptions{Entrants: spec.PortfolioEntrants()}
		if ropts, ok := spec.RefineOptions(); ok {
			popts.Refine = ropts
			popts.RefineBudgetBytes = spec.RefineBudgetBytes()
		} else {
			popts.NoRefine = true
		}
		if set != nil {
			pres, err = picasso.PortfolioPauli(ctx, set, opts, popts)
		} else {
			pres, err = picasso.Portfolio(ctx, oracle, opts, popts)
		}
		if pres != nil {
			res = pres.Result
		}
	case set != nil && spec.Streamed():
		res, err = picasso.StreamPauli(ctx, set, opts)
	case set != nil:
		res, err = picasso.ColorPauliContext(ctx, set, opts)
	case spec.Streamed():
		res, err = picasso.Stream(ctx, oracle, opts)
	default:
		res, err = picasso.ColorContext(ctx, oracle, opts)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fatal("coloring failed: deadline %s exceeded", spec.Deadline)
		}
		fatal("coloring failed: %v", err)
	}
	elapsed := time.Since(t0)

	n := len(res.Colors)
	fmt.Printf("colors: %d (%.2f%% of |V|)\n", res.NumColors, 100*float64(res.NumColors)/float64(n))
	fmt.Printf("iterations: %d, max conflict edges: %d, total conflict edges: %d\n",
		len(res.Iters), res.MaxConflictEdges, res.TotalConflictEdges)
	fmt.Printf("conflict pairs tested: %d of %d all-pairs (bucketed kernel)\n",
		res.TotalPairsTested, allPairsWork(res.Iters))
	fmt.Printf("time: total %v (assign %v, conflict graph %v, conflict coloring %v)\n",
		elapsed.Round(time.Millisecond), res.AssignTime.Round(time.Millisecond),
		res.BuildTime.Round(time.Millisecond), res.ColorTime.Round(time.Millisecond))
	fmt.Printf("host peak memory (tracked): %.2f MB\n", float64(res.HostPeakBytes)/1e6)
	if res.Shards > 0 {
		fmt.Printf("streamed: %d shards, %d cross-frontier pair tests\n", res.Shards, res.FixedPairsTested)
		if res.PipelinedShards > 0 {
			fmt.Printf("pipelined: %d shards overlapped, %.0f%% of build time hidden\n",
				res.PipelinedShards, 100*res.OverlapRatio)
		}
		if spec.Speculate >= 2 {
			fmt.Printf("speculated: %d lanes, %d cross-shard conflicts repaired (%d recolored in palette, %.0f%% of lane time hidden)\n",
				spec.Speculate, res.SpeculativeConflicts, res.RepairRecolors, 100*res.OverlapRatio)
		}
	}
	if b := spec.BudgetBytes(); b > 0 {
		verdict := "respected"
		if res.BudgetExceeded {
			verdict = "EXCEEDED"
		}
		fmt.Printf("memory budget %s: %s (peak %.2f MB)\n",
			jobspec.FormatBytes(b), verdict, float64(res.HostPeakBytes)/1e6)
	}
	if res.Fallback {
		fmt.Println("note: iteration cap hit; remainder finished with singleton colors")
	}
	if *verbose {
		for _, it := range res.Iters {
			fmt.Printf("  iter %2d: active %7d  P %6d  L %3d  |Vc| %7d  |Ec| %9d  pairs %10d  failed %6d\n",
				it.Iteration, it.ActiveVertices, it.Palette, it.ListSize,
				it.ConflictVertices, it.ConflictEdges, it.PairsTested, it.Failed)
		}
	}

	if pres != nil {
		fmt.Printf("portfolio: %d entrants, winner %d with %d colors (bound %d), %d cancelled early, %d candidate slots pruned, time-to-best %v\n",
			len(pres.Entrants), pres.Winner, pres.Result.NumColors, pres.Bound,
			pres.CancelledEntrants, pres.BoundPrunes, pres.TimeToBest.Round(time.Millisecond))
		for _, e := range pres.Entrants {
			outcome := fmt.Sprintf("%d colors in %d shards", e.Colors, e.Shards)
			if e.Cancelled {
				outcome = fmt.Sprintf("cancelled at shard %d", e.CancelledAtShard)
			}
			fmt.Printf("  entrant %2d [%s]: %s (%v, peak %.2f MB, %d pruned)\n",
				e.Index, e.Name, outcome, e.Wall.Round(time.Millisecond),
				float64(e.PeakBytes)/1e6, e.BoundPrunes)
		}
	}

	// The palette-refinement pass claws colors back from the finished
	// coloring: verification and group output below run on the refined
	// result. Portfolio runs already refined their winner inside the race.
	finalColors := res.Colors
	var rst *picasso.RefineStats
	switch {
	case pres != nil:
		finalColors = pres.FinalColors()
		rst = pres.Refine
	default:
		if ropts, ok := spec.RefineOptions(); ok {
			if b := spec.RefineBudgetBytes(); b > 0 {
				opts.MemoryBudgetBytes = b
			}
			if set != nil {
				rst, err = picasso.RefinePauli(context.Background(), set, res.Colors, opts, ropts)
			} else {
				rst, err = picasso.Refine(context.Background(), oracle, res.Colors, opts, ropts)
			}
			if err != nil {
				fatal("refinement failed: %v", err)
			}
			finalColors = rst.Colors
		}
	}
	if rst != nil {
		fmt.Printf("refined: %d -> %d colors (-%.1f%%) in %d rounds, %d/%d moved vertices recolored (%v, peak %.2f MB)\n",
			rst.ColorsBefore, rst.ColorsAfter,
			100*float64(rst.ClassesEliminated)/float64(max(rst.ColorsBefore, 1)),
			rst.Rounds, rst.Moved-rst.Stuck, rst.Moved,
			rst.TotalTime.Round(time.Millisecond), float64(rst.HostPeakBytes)/1e6)
		if *verbose {
			for _, r := range rst.RoundStats {
				fmt.Printf("  round %2d: ceiling %6d  classes %5d  moved %6d  recolored %6d  stuck %6d  -> %6d colors\n",
					r.Round, r.Ceiling, r.Classes, r.Moved, r.Recolored, r.Stuck, r.ColorsAfter)
			}
		}
	}

	if *verify {
		var err error
		if set != nil {
			err = picasso.VerifyGrouping(set, finalColors)
		} else {
			err = picasso.Verify(oracle, finalColors)
		}
		if err != nil {
			fatal("VERIFICATION FAILED: %v", err)
		}
		fmt.Println("verification: OK (proper coloring; clique partition for Pauli inputs)")
	}

	if *groupsF != "" && set != nil {
		writeGroups(*groupsF, set, finalColors)
		fmt.Printf("groups written to %s\n", *groupsF)
	}

	if store != nil {
		persistRun(store, spec, set, finalColors, lastCheckpoint)
	}
}

// runPrep is the preprocess half of the preprocess/serve split: parse the
// input once, persist it as a content-addressed artifact — the packed slab
// for Pauli inputs, the base CSR for graph inputs — and exit. A later run
// (or a picasso-serve replica) pointed at the same store loads the parsed
// input instead of re-parsing.
func runPrep(store *artifact.Store, spec jobspec.Spec) {
	_, set, err := spec.BuildInput()
	if err != nil {
		fatal("building input: %v", err)
	}
	if set == nil {
		g := spec.GraphCSR()
		if g == nil {
			fatal("-prep needs a parseable input (-molecule, -strings, or -graph); -random graphs have nothing to parse")
		}
		canonical := spec.Canonical()
		path, err := store.Put(&artifact.Artifact{Spec: canonical, Graph: g})
		if err != nil {
			fatal("writing artifact: %v", err)
		}
		fmt.Printf("prep artifact %s: graph with %d vertices, %d edges -> %s\n",
			artifact.Address(canonical), g.N, len(g.Adj)/2, path)
		return
	}
	canonical := spec.Canonical()
	path, err := store.Put(&artifact.Artifact{Spec: canonical, Set: set})
	if err != nil {
		fatal("writing artifact: %v", err)
	}
	fmt.Printf("prep artifact %s: %d strings on %d qubits -> %s\n",
		artifact.Address(canonical), set.Len(), set.Qubits(), path)
}

// persistRun writes the finished run to the artifact store: spec, slab (for
// Pauli inputs), coloring, its inverted index, and the last resumable
// streaming checkpoint, if any. Best-effort — a write failure is reported
// but never fails a run whose results were already printed.
func persistRun(store *artifact.Store, spec jobspec.Spec, set *picasso.PauliSet, colors picasso.Coloring, checkpoint []byte) {
	ix, err := bucket.BuildIndex(colors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "picasso: artifact not written: %v\n", err)
		return
	}
	art := &artifact.Artifact{
		Spec:     spec.Canonical(),
		Set:      set,
		Graph:    spec.GraphCSR(),
		Index:    ix,
		Colors:   colors,
		RunState: checkpoint,
	}
	path, err := store.Put(art)
	if err != nil {
		fmt.Fprintf(os.Stderr, "picasso: artifact not written: %v\n", err)
		return
	}
	fmt.Printf("artifact written to %s\n", path)
}

func readStrings(path string) []string {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	lines, err := jobspec.ReadPauliLines(f)
	if err != nil {
		fatal("%s: %v", path, err)
	}
	return lines
}

func writeGroups(path string, set *picasso.PauliSet, c picasso.Coloring) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	for gi, group := range picasso.Groups(set, c) {
		fmt.Fprintf(w, "# group %d (%d strings)\n", gi, len(group))
		for _, idx := range group {
			fmt.Fprintln(w, set.At(idx).String())
		}
	}
}

// allPairsWork sums the m(m−1)/2 pair tests a dense conflict scan would
// have spent across the run's iterations — the denominator of the bucketed
// kernel's savings.
func allPairsWork(iters []picasso.IterStats) int64 {
	var total int64
	for _, it := range iters {
		m := int64(it.ActiveVertices)
		total += m * (m - 1) / 2
	}
	return total
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "picasso: "+format+"\n", args...)
	os.Exit(1)
}
