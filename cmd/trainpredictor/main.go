// Command trainpredictor reproduces the §VI machine-learning methodology:
// grid-sweep the (P′, α) space on training molecules, build the β-objective
// dataset, fit the random-forest regressor, evaluate on held-out molecules,
// and answer ad-hoc prediction queries.
//
//	trainpredictor -train 5 -max-terms 3000
//	trainpredictor -predict 0.5:20000:100000000   # β:|V|:|E|
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"picasso/internal/core"
	"picasso/internal/graph"
	"picasso/internal/mlpredict"
	"picasso/internal/workload"
)

func main() {
	var (
		trainN   = flag.Int("train", 5, "number of small-class molecules to train on (rest are test)")
		maxTerms = flag.Int("max-terms", 2500, "instance size cap for the sweeps")
		trees    = flag.Int("trees", 100, "forest size (paper: 100)")
		depth    = flag.Int("depth", 20, "maximum tree depth (paper: 20)")
		seed     = flag.Int64("seed", 1, "sweep and training seed")
		predict  = flag.String("predict", "", "ad-hoc query as beta:vertices:edges")
	)
	flag.Parse()

	build := workload.DefaultBuild()
	build.MaxTerms = *maxTerms

	insts := workload.SmallSet()
	if *trainN < 1 || *trainN >= len(insts) {
		fatal("-train must be in [1, %d)", len(insts))
	}

	pfracs := mlpredict.DefaultPFracs()
	alphas := []float64{0.5, 1.5, 2.5, 3.5, 4.5}
	betas := mlpredict.DefaultBetas()

	fmt.Printf("sweeping %d molecules over %d grid points each...\n",
		len(insts), len(pfracs)*len(alphas))
	var trainSweeps, testSweeps []*mlpredict.SweepResult
	for i, inst := range insts {
		set, err := inst.Build(build)
		if err != nil {
			fatal("building %s: %v", inst.Name, err)
		}
		orc := core.NewPauliOracle(set)
		edges := graph.CountEdges(orc)
		s, err := mlpredict.Sweep(orc, edges, pfracs, alphas, *seed, 0)
		if err != nil {
			fatal("sweeping %s: %v", inst.Name, err)
		}
		role := "train"
		if i >= *trainN {
			role = "test"
			testSweeps = append(testSweeps, s)
		} else {
			trainSweeps = append(trainSweeps, s)
		}
		fmt.Printf("  %-14s |V|=%6d |E|=%12d  (%s)\n", inst.Name, s.V, s.E, role)
	}

	rows := mlpredict.BuildRows(trainSweeps, betas)
	testRows := mlpredict.BuildRows(testSweeps, betas)
	opts := mlpredict.ForestOptions{Trees: *trees, MaxDepth: *depth, Seed: *seed}
	pred, err := mlpredict.TrainPredictor(rows, opts)
	if err != nil {
		fatal("training: %v", err)
	}
	mape, r2 := pred.Evaluate(testRows)
	fmt.Printf("\ntrained on %d rows, tested on %d rows\n", len(rows), len(testRows))
	fmt.Printf("MAPE = %.3f (paper: 0.19)\nR²   = %.3f (paper: 0.88)\n", mape, r2)

	if *predict != "" {
		parts := strings.Split(*predict, ":")
		if len(parts) != 3 {
			fatal("-predict wants beta:vertices:edges")
		}
		beta, err1 := strconv.ParseFloat(parts[0], 64)
		v, err2 := strconv.Atoi(parts[1])
		e, err3 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			fatal("malformed -predict %q", *predict)
		}
		pf, a := pred.Predict(beta, v, e)
		fmt.Printf("\nrecommendation for β=%.2f, |V|=%d, |E|=%d:\n", beta, v, e)
		fmt.Printf("  palette P' = %.1f%% of |V|, α = %.2f\n", pf*100, a)
	}

	// Always show the β tradeoff curve for the first test molecule.
	if len(testSweeps) > 0 {
		s := testSweeps[0]
		fmt.Printf("\nβ tradeoff on the first test molecule (|V|=%d):\n", s.V)
		for _, b := range []float64{0.1, 0.5, 0.9} {
			pf, a := pred.Predict(b, s.V, s.E)
			opt := s.OptimalFor(b)
			fmt.Printf("  β=%.1f: predicted (P'=%.1f%%, α=%.2f), sweep-optimal (P'=%.1f%%, α=%.1f)\n",
				b, pf*100, a, opt.PFrac*100, opt.Alpha)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trainpredictor: "+format+"\n", args...)
	os.Exit(1)
}
