// Command benchjson converts `go test -bench` text output into JSON, for
// the CI benchmark artifact (BENCH_conflict.json): per-commit,
// machine-readable conflict-build and end-to-end numbers.
//
//	go test -run '^$' -bench ConflictBuild -benchtime 2x ./... | benchjson -o BENCH_conflict.json
//
// Reads stdin (or the files given as arguments), writes indented JSON to
// -o (default stdout). Exits nonzero on malformed benchmark lines or when
// no benchmarks were found — an empty artifact is a broken pipeline, not a
// result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"picasso/internal/benchparse"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	allowEmpty := flag.Bool("allow-empty", false, "do not fail when the input has no benchmark lines")
	flag.Parse()

	var readers []io.Reader
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		readers = append(readers, f)
	}

	rep, err := benchparse.Parse(io.MultiReader(readers...))
	if err != nil {
		fatal("%v", err)
	}
	if len(rep.Benchmarks) == 0 && !*allowEmpty {
		fatal("no benchmark lines in input")
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("encoding: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
