// Command picasso-serve runs the Picasso coloring service: an HTTP API
// over an asynchronous job queue backed by the pluggable conflict-build
// backends.
//
//	picasso-serve -addr :8080 -serve-workers 4 -cache 512 -backend parallel
//
// Endpoints (all JSON):
//
//	POST   /v1/jobs              submit a job spec; 202 queued, 200 cache hit
//	GET    /v1/jobs/{id}         status, live progress, result summary
//	DELETE /v1/jobs/{id}         cancel: queued jobs drop at once, running
//	                             jobs stop at the engine's next stage boundary
//	POST   /v1/jobs/{id}/append  color new Pauli strings against a finished
//	                             job's frozen grouping (no recoloring)
//	POST   /v1/jobs/{id}/refine  palette-refine a finished job's grouping
//	                             into fewer colors (parent stays served)
//	GET    /v1/jobs/{id}/groups  color classes / unitary groups (when done)
//	GET    /v1/healthz           liveness
//	GET    /v1/stats             lifetime counters
//	GET    /v1/backends          registered conflict-build backends
//	GET    /v1/instances         Table II instance names
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"random":"2000:0.5","seed":1}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/groups
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"picasso/internal/jobspec"
	"picasso/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("serve-workers", 0, "coloring worker pool size (0 = all cores)")
		queue      = flag.Int("queue", 256, "max queued jobs before submissions get 503")
		cache      = flag.Int("cache", 512, "finished jobs retained in the LRU result cache")
		cacheBytes = flag.String("cache-bytes", "256MiB", "approximate result bytes the LRU may pin")
		maxVerts   = flag.Int("max-vertices", 1<<20, "reject jobs larger than this many vertices")
		backend    = flag.String("backend", "", "default conflict-build backend for specs that leave it empty")
		budget     = flag.String("budget", "", "default per-job host-memory budget for specs without one, e.g. 512MiB")
		pipeline   = flag.Bool("pipeline", false, "pipeline streamed jobs that set neither pipeline nor speculate")
		speculate  = flag.Int("speculate", 0, "speculative lanes for streamed jobs that set neither knob (>=2)")
		raceN      = flag.Int("race-entrants", 0, "race streamed jobs without a portfolio block as a portfolio of this many entrants (>=2)")
		maxRace    = flag.Int("max-race-entrants", 0, "reject portfolio specs wider than this (0 = library cap)")
		artDir     = flag.String("artifact-dir", "", "persist finished jobs as .pic artifacts here; the result cache gains a disk tier that survives restarts and a job journal that resumes interrupted work")
		tenantQ    = flag.Int("tenant-quota", 0, "max active jobs per X-Tenant header value; past it submissions get 429 tenant_quota (0 = unlimited)")
	)
	flag.Parse()

	cacheB, err := jobspec.ParseBytes(*cacheBytes)
	if err != nil || cacheB < 0 {
		fmt.Fprintf(os.Stderr, "picasso-serve: -cache-bytes: bad size %q\n", *cacheBytes)
		os.Exit(1)
	}
	budgetB, err := jobspec.ParseBytes(*budget)
	if err != nil || budgetB < 0 {
		fmt.Fprintf(os.Stderr, "picasso-serve: -budget: bad size %q\n", *budget)
		os.Exit(1)
	}

	srv, err := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheSize:          *cache,
		CacheBytes:         cacheB,
		MaxVertices:        *maxVerts,
		DefaultBackend:     *backend,
		DefaultBudgetBytes: budgetB,
		DefaultPipeline:    *pipeline,
		DefaultSpeculate:   *speculate,
		DefaultEntrants:    *raceN,
		MaxEntrants:        *maxRace,
		ArtifactDir:        *artDir,
		TenantQuota:        *tenantQ,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "picasso-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() {
		log.Printf("picasso-serve listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "picasso-serve: %v\n", err)
			os.Exit(1)
		}
	case sig := <-stop:
		log.Printf("received %s; draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if *artDir != "" {
			// With a journal, a drain checkpoints running streamed jobs and
			// leaves them live on disk: the next picasso-serve on this
			// artifact dir resumes them instead of recoloring from scratch.
			srv.Drain()
		} else {
			srv.Close() // no journal to resume from: run the queue dry
		}
		log.Printf("drained; bye")
	}
}
