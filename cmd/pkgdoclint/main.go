// Command pkgdoclint is the CI docs gate: it walks the given directories
// and fails when any Go package lacks a package comment. Every package in
// this repo documents its role and invariants at the package clause
// (ARCHITECTURE.md indexes them); this gate keeps that true as packages are
// added.
//
//	pkgdoclint .            # lint the whole module
//	pkgdoclint internal cmd # lint specific trees
//
// Test files, external test packages, and testdata/vendored trees are
// ignored: the gate is about the documented API surface, not fixtures.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			ok, hasGo, err := dirHasPackageDoc(path)
			if err != nil {
				return err
			}
			if hasGo && !ok {
				missing = append(missing, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pkgdoclint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(missing) > 0 {
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "pkgdoclint: package in %s has no package comment\n", dir)
		}
		os.Exit(1)
	}
}

// dirHasPackageDoc parses the package clauses of a directory's non-test Go
// files and reports whether any carries a doc comment. hasGo reports
// whether the directory holds non-test Go files at all (directories
// without are not packages and pass vacuously).
func dirHasPackageDoc(dir string) (ok, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return false, hasGo, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}
