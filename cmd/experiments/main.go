// Command experiments regenerates the paper's tables and figures.
//
//	experiments -run all            # every artifact at quick scale
//	experiments -run table3 -full   # paper-scale instances, 5 seeds
//	experiments -run fig5 -instance "H4 2D 631g"
//
// Each run prints the rows the paper reports; EXPERIMENTS.md records a
// captured copy next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"picasso/internal/experiments"
	"picasso/internal/workload"
)

func main() {
	var (
		run      = flag.String("run", "all", "table2|table3|table4|table5|fig2|fig3|fig4|fig5|ml|ablation|all")
		full     = flag.Bool("full", false, "paper-scale instances and 5 seeds (slow)")
		maxTerms = flag.Int("max-terms", 0, "override instance size cap (0 = config default)")
		maxInst  = flag.Int("max-instances", 0, "cap instances per class (0 = config default)")
		instance = flag.String("instance", "H6 3D sto3g", "instance for fig5/ablation")
		classes  = flag.String("classes", "small", "comma list for table2/fig2/fig3: small,medium,large")
	)
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if *maxTerms > 0 {
		cfg.Build.MaxTerms = *maxTerms
	}
	if *maxInst > 0 {
		cfg.MaxInstances = *maxInst
	}

	var classList []workload.Class
	for _, c := range strings.Split(*classes, ",") {
		switch strings.TrimSpace(c) {
		case "small":
			classList = append(classList, workload.Small)
		case "medium":
			classList = append(classList, workload.Medium)
		case "large":
			classList = append(classList, workload.Large)
		case "":
		default:
			fatal("unknown class %q", c)
		}
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	if want("table2") {
		ran = true
		section("Table II — dataset")
		rows, err := experiments.Table2(cfg, classList)
		check(err)
		experiments.RenderTable2(os.Stdout, rows)
	}
	if want("table3") {
		ran = true
		section("Table III — coloring quality")
		rows, err := experiments.Table3(cfg)
		check(err)
		experiments.RenderTable3(os.Stdout, rows)
	}
	if want("table4") {
		ran = true
		section("Table IV — peak memory")
		rows, err := experiments.Table4(cfg)
		check(err)
		experiments.RenderTable4(os.Stdout, rows)
	}
	if want("table5") {
		ran = true
		section("Table V — CPU-only vs GPU-assisted")
		rows, err := experiments.Table5(cfg)
		check(err)
		experiments.RenderTable5(os.Stdout, rows)
	}
	if want("fig2") {
		ran = true
		section("Figure 2 — conflict-edge scaling vs device ceiling")
		rows, err := experiments.Fig2(cfg, classList)
		check(err)
		experiments.RenderFig2(os.Stdout, rows)
	}
	if want("fig3") {
		ran = true
		section("Figure 3 — runtime breakdown")
		rows, err := experiments.Fig3(cfg, classList)
		check(err)
		experiments.RenderFig3(os.Stdout, rows)
	}
	if want("fig4") {
		ran = true
		section("Figure 4 — relative comparison vs ECL-GC-R (α = 4.5)")
		points, err := experiments.Fig4(cfg)
		check(err)
		experiments.RenderFig4(os.Stdout, points)
	}
	if want("fig5") {
		ran = true
		section("Figure 5 — P × α sensitivity on " + *instance)
		pfracs, alphas := experiments.DefaultFig5Axes(!*full)
		res, err := experiments.Fig5(cfg, *instance, pfracs, alphas)
		check(err)
		experiments.RenderFig5(os.Stdout, res)
	}
	if want("ml") {
		ran = true
		section("§VI — random-forest parameter predictor")
		res, err := experiments.ML(cfg, 0)
		check(err)
		experiments.RenderML(os.Stdout, res)
	}
	if want("ablation") {
		ran = true
		section("Ablation — conflict-graph coloring strategies")
		rows, err := experiments.AblationListColoring(cfg, *instance)
		check(err)
		experiments.RenderAblationList(os.Stdout, rows)
		section("Ablation — encoded vs naive anticommutation")
		enc, err := experiments.AblationEncoding(cfg, *instance)
		check(err)
		experiments.RenderEncoding(os.Stdout, enc)
		section("Ablation — iterative vs single pass")
		it, err := experiments.AblationIterative(cfg, *instance)
		check(err)
		experiments.RenderIterative(os.Stdout, it)
	}
	if !ran {
		fatal("unknown -run %q", *run)
	}
}

var start = time.Now()

func section(title string) {
	fmt.Printf("\n=== %s (t=%v) ===\n", title, time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
