package picasso_test

import (
	"context"
	"testing"

	"picasso"
)

func TestParseAndColorPauli(t *testing.T) {
	set, err := picasso.ParsePauliStrings([]string{
		"IIII", "XYXY", "YYXY", "XXXY", "YXXY", "XYYY", "YYYY", "XXYY",
		"YXYY", "XYXX", "YYXX", "XXXX", "YXXX", "XYYX", "YYYX", "XXYX", "YXYX",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := picasso.ColorPauli(set, picasso.Aggressive(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := picasso.VerifyGrouping(set, res.Colors); err != nil {
		t.Fatal(err)
	}
	groups := picasso.Groups(set, res.Colors)
	if len(groups) != res.NumColors {
		t.Fatalf("groups %d vs colors %d", len(groups), res.NumColors)
	}
	if len(groups) >= set.Len() {
		t.Errorf("no compression: %d groups for %d strings", len(groups), set.Len())
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != set.Len() {
		t.Fatalf("groups cover %d of %d strings", total, set.Len())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := picasso.ParsePauliStrings(nil); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := picasso.ParsePauliStrings([]string{"XX", "QQ"}); err == nil {
		t.Error("bad letters accepted")
	}
	if _, err := picasso.ParsePauliStrings([]string{"XX", "XXX"}); err == nil {
		t.Error("ragged lengths accepted")
	}
}

func TestColorRandomGraph(t *testing.T) {
	o := picasso.RandomGraph(300, 0.5, 7)
	res, err := picasso.Color(o, picasso.Normal(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := picasso.Verify(o, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestComplementOf(t *testing.T) {
	o := picasso.RandomGraph(50, 0.3, 9)
	c := picasso.ComplementOf(o)
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			if u != v && o.HasEdge(u, v) == c.HasEdge(u, v) {
				t.Fatalf("complement wrong at (%d,%d)", u, v)
			}
		}
	}
}

func TestBuildMolecule(t *testing.T) {
	set, err := picasso.BuildMolecule("H4 1D sto3g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Qubits() != 8 {
		t.Fatalf("qubits = %d", set.Qubits())
	}
	grown, err := picasso.BuildMolecule("H4 1D sto3g", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Len() <= set.Len() {
		t.Errorf("target growth failed: %d vs %d", grown.Len(), set.Len())
	}
	if _, err := picasso.BuildMolecule("nonsense", 0); err == nil {
		t.Error("bad molecule accepted")
	}
}

func TestDeviceBudget(t *testing.T) {
	o := picasso.RandomGraph(200, 0.6, 11)
	opts := picasso.Normal(2)
	opts.Device = picasso.NewDevice("small", 1<<28, 0)
	res, err := picasso.Color(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := picasso.Verify(o, res.Colors); err != nil {
		t.Fatal(err)
	}
	if picasso.NewA100().Capacity != 40e9 {
		t.Error("A100 capacity wrong")
	}
}

func TestMemoryTrackerIntegration(t *testing.T) {
	var tr picasso.MemoryTracker
	opts := picasso.Normal(4)
	opts.Tracker = &tr
	o := picasso.RandomGraph(200, 0.5, 13)
	res, err := picasso.Color(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostPeakBytes <= 0 {
		t.Error("no peak recorded")
	}
}

func TestEndToEndMoleculeGrouping(t *testing.T) {
	set, err := picasso.BuildMolecule("H2 1D 631g", 1500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := picasso.ColorPauli(set, picasso.Normal(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := picasso.VerifyGrouping(set, res.Colors); err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.NumColors) / float64(set.Len())
	if ratio > 0.5 {
		t.Errorf("weak compression: %d groups for %d strings (%.0f%%)",
			res.NumColors, set.Len(), 100*ratio)
	}
}

// TestStreamedBudgetAcceptance is the PR's acceptance gate: a streamed run
// at n = 50k with a budget set well below the one-shot run's measured peak
// completes with a verified proper coloring whose tracked peak stays under
// the budget, at a color count within a fixed factor of one-shot quality.
func TestStreamedBudgetAcceptance(t *testing.T) {
	const n = 50000
	o := picasso.RandomGraph(n, 0.5, 77)

	var oneTr picasso.MemoryTracker
	oneOpts := picasso.Normal(5)
	oneOpts.Tracker = &oneTr
	oneShot, err := picasso.Color(o, oneOpts)
	if err != nil {
		t.Fatal(err)
	}
	if oneTr.Peak() == 0 {
		t.Fatal("one-shot run tracked no memory")
	}

	budget := oneTr.Peak() / 3
	var tr picasso.MemoryTracker
	opts := picasso.Normal(5)
	opts.Tracker = &tr
	opts.MemoryBudgetBytes = budget
	res, err := picasso.Stream(context.Background(), o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := picasso.Verify(o, res.Colors); err != nil {
		t.Fatalf("streamed coloring not proper: %v", err)
	}
	if tr.Peak() > budget {
		t.Fatalf("tracked peak %d over budget %d (one-shot peak %d)",
			tr.Peak(), budget, oneTr.Peak())
	}
	if res.BudgetExceeded {
		t.Fatal("budget reported exceeded")
	}
	if res.Shards < 2 {
		t.Fatalf("budget a third of one-shot peak produced %d shard(s)", res.Shards)
	}
	if res.NumColors > 2*oneShot.NumColors {
		t.Fatalf("streamed %d colors vs one-shot %d (factor > 2)",
			res.NumColors, oneShot.NumColors)
	}
	t.Logf("one-shot: peak %.2f MB, %d colors; streamed: budget %.2f MB, peak %.2f MB, %d shards, %d colors",
		float64(oneTr.Peak())/1e6, oneShot.NumColors,
		float64(budget)/1e6, float64(tr.Peak())/1e6, res.Shards, res.NumColors)
}

// TestRefineStreamedAcceptance is this PR's acceptance gate: on the
// streamed n = 20k d = 0.5 Normal benchmark under a PR-4-style budget (a
// third of the measured one-shot peak), the palette-refinement pass cuts
// the streamed color count by at least 10% while the tracked peak stays
// under the budget, and the refined coloring verifies proper. Every
// eliminated color is a measurement group saved in the quantum workload.
func TestRefineStreamedAcceptance(t *testing.T) {
	const n = 20000
	o := picasso.RandomGraph(n, 0.5, 11)

	var oneTr picasso.MemoryTracker
	one := picasso.Normal(3)
	one.Tracker = &oneTr
	if _, err := picasso.Color(o, one); err != nil {
		t.Fatal(err)
	}
	budget := oneTr.Peak() / 3

	var tr picasso.MemoryTracker
	opts := picasso.Normal(3)
	opts.Tracker = &tr
	opts.MemoryBudgetBytes = budget
	res, st, err := picasso.RefineStream(context.Background(), o, opts, picasso.RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := picasso.Verify(o, st.Colors); err != nil {
		t.Fatalf("refined coloring not proper: %v", err)
	}
	if st.ColorsBefore != res.NumColors {
		t.Fatalf("refinement started from %d colors, stream produced %d", st.ColorsBefore, res.NumColors)
	}
	cut := float64(res.NumColors-st.ColorsAfter) / float64(res.NumColors)
	if cut < 0.10 {
		t.Fatalf("refinement cut %.1f%% of %d streamed colors, want >= 10%%", 100*cut, res.NumColors)
	}
	if res.HostPeakBytes > budget || st.HostPeakBytes > budget {
		t.Fatalf("phase peaks %d/%d over budget %d", res.HostPeakBytes, st.HostPeakBytes, budget)
	}
	if res.BudgetExceeded || st.BudgetExceeded {
		t.Fatal("budget reported exceeded")
	}
	prev := st.ColorsBefore
	for _, r := range st.RoundStats {
		if r.ColorsAfter > prev {
			t.Fatalf("round %d raised colors %d -> %d", r.Round, prev, r.ColorsAfter)
		}
		prev = r.ColorsAfter
	}
	t.Logf("streamed: %d colors under %.2f MB budget (%d shards); refined: %d colors (-%.1f%%) in %d rounds, refine peak %.2f MB",
		res.NumColors, float64(budget)/1e6, res.Shards,
		st.ColorsAfter, 100*cut, st.Rounds, float64(st.HostPeakBytes)/1e6)
}
