// Benchmark for crash recovery: resuming a streamed run from a persisted
// checkpoint versus recoloring the same instance from scratch. CI
// publishes the comparison as BENCH_recovery.json — the number that
// justifies the journal's resume-not-restart policy.
package picasso_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"picasso"
)

// BenchmarkRecovery captures the engine's shard-boundary checkpoint at
// several depths of an n=20k d=0.5 streamed run (8 shards of 2500), then
// measures ResumeStream from each — JSON decode included, since that is
// exactly what server recovery replays from a .ckpt sidecar — against the
// from-scratch baseline. Resume cost should scale with the shards that
// remain, not with the shards already paid for.
func BenchmarkRecovery(b *testing.B) {
	const (
		n     = 20000
		shard = 2500
	)
	o := picasso.RandomGraph(n, 0.5, 7)
	mkOpts := func(arena *picasso.Arena) picasso.Options {
		opts := picasso.Normal(7)
		opts.ShardSize = shard
		opts.Arena = arena
		return opts
	}

	// One instrumented run collects a checkpoint blob per shard boundary.
	ckpts := map[int][]byte{}
	setupOpts := mkOpts(picasso.NewArena())
	setupOpts.Checkpoint = func(st picasso.RunState) {
		if blob, err := json.Marshal(st); err == nil {
			ckpts[st.Shards] = blob
		}
	}
	ref, err := picasso.Stream(context.Background(), o, setupOpts)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("scratch", func(b *testing.B) {
		arena := picasso.NewArena()
		for i := 0; i < b.N; i++ {
			res, err := picasso.Stream(context.Background(), o, mkOpts(arena))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.NumColors), "colors")
				b.ReportMetric(float64(res.Shards), "shards")
			}
		}
	})
	for _, done := range []int{2, 4, 6} {
		blob, ok := ckpts[done]
		if !ok {
			b.Fatalf("no checkpoint at shard %d (have %d checkpoints)", done, len(ckpts))
		}
		b.Run(fmt.Sprintf("resume/after=%d", done), func(b *testing.B) {
			arena := picasso.NewArena()
			for i := 0; i < b.N; i++ {
				var st picasso.RunState
				if err := json.Unmarshal(blob, &st); err != nil {
					b.Fatal(err)
				}
				res, err := picasso.ResumeStream(context.Background(), o, mkOpts(arena), &st)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if res.NumColors != ref.NumColors {
						b.Fatalf("resumed run diverged: %d colors, want %d", res.NumColors, ref.NumColors)
					}
					b.ReportMetric(float64(res.ResumedShards), "resumed-shards")
					b.ReportMetric(float64(res.Shards-res.ResumedShards), "colored-shards")
				}
			}
		})
	}
}
